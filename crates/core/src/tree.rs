//! Cluster-level handle: configuration, bootstrap, and shared tree state.

use crate::catalog::{CatEntry, GlobalVal, TipVal, VersionCache, NO_PARENT};
use crate::error::Error;
use crate::layout::{Layout, LayoutParams};
use crate::node::{Node, NodePtr};
use crate::proxy::Proxy;
use crate::scs::SnapshotService;
use minuet_dyntx::encode_obj;
use minuet_sinfonia::{ClusterConfig, MemNodeId, SinfoniaCluster};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Concurrency-control mode of the B-tree (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConcurrencyMode {
    /// Minuet's scheme: traverse internal nodes with dirty reads guarded by
    /// fence keys and version tags; only the leaf is validated.
    DirtyTraversals,
    /// The baseline of Aguilera et al.: every traversed node is validated,
    /// with internal-node seqnos replicated at every memnode so validation
    /// can happen at the leaf's memnode. Internal-node updates engage all
    /// memnodes.
    FullValidation,
}

/// Versioning mode of the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VersionMode {
    /// Linear snapshots only (§4): the version tree is a path.
    Linear,
    /// Branching versions / writable clones (§5).
    Branching,
}

/// Configuration of every tree hosted by a [`MinuetCluster`].
#[derive(Clone, Debug)]
pub struct TreeConfig {
    /// Concurrency-control mode.
    pub mode: ConcurrencyMode,
    /// Versioning mode.
    pub version_mode: VersionMode,
    /// Address-space layout parameters.
    pub layout: LayoutParams,
    /// Cap on leaf entries (besides the byte-size cap); small values force
    /// deep trees in tests.
    pub max_leaf_entries: usize,
    /// Cap on internal-node children.
    pub max_internal_entries: usize,
    /// Version-tree branching factor bound β (§5.2).
    pub beta: usize,
    /// Cache internal nodes at proxies (§2.3; ablation switch).
    pub cache_internal_nodes: bool,
    /// Cache **leaf** nodes at proxies too: a get over a cached leaf
    /// issues a compare-only tip+seqno validation minitransaction (tens
    /// of bytes) instead of re-fetching the leaf image, falling back to a
    /// full fetch on mismatch. Ignored in
    /// [`ConcurrencyMode::FullValidation`] (the baseline has no leaf
    /// cache).
    pub cache_leaves: bool,
    /// Capacity of a proxy's node cache in decoded nodes (internal +
    /// leaf); entries beyond it are evicted with a CLOCK sweep.
    pub node_cache_capacity: usize,
    /// Piggy-back read-set validation onto fetches (§2.2; ablation switch).
    pub piggyback: bool,
    /// Use blocking minitransactions for snapshot-creation commits (§4.1).
    pub blocking_meta_updates: bool,
    /// Lock-wait budget of blocking minitransactions.
    pub blocking_wait: Duration,
    /// Give up an operation after this many optimistic retries.
    pub max_op_retries: usize,
    /// Slots grabbed per allocator chunk refill.
    pub alloc_chunk: u32,
    /// Memnode capacity the address-space layout is sized for (elastic
    /// scale-out headroom): [`MinuetCluster::add_memnode`] can grow the
    /// cluster up to this many memnodes without relocating any region.
    /// `0` means "the initial memnode count" (a fixed-size cluster).
    pub max_memnodes: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            mode: ConcurrencyMode::DirtyTraversals,
            version_mode: VersionMode::Linear,
            layout: LayoutParams::default(),
            max_leaf_entries: usize::MAX,
            max_internal_entries: usize::MAX,
            beta: 2,
            cache_internal_nodes: true,
            cache_leaves: true,
            node_cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            piggyback: true,
            blocking_meta_updates: true,
            blocking_wait: Duration::from_millis(50),
            max_op_retries: 100_000,
            alloc_chunk: 64,
            max_memnodes: 0,
        }
    }
}

impl TreeConfig {
    /// Byte budget a node's *content* may grow to before it must split:
    /// the slot payload capacity minus headroom for the up-to-β
    /// descendant-set entries (14 encoded bytes each) that copy-on-write
    /// tagging and snapshot root bookkeeping push onto a node **after**
    /// its content froze. Splitting at the full slot capacity instead
    /// would let a node sit flush against its slot, and the later desc
    /// push would overflow it — a probabilistic crash that only fires
    /// when a snapshot or CoW lands on a node within 14·β bytes of full.
    pub fn split_payload_cap(&self) -> usize {
        const DESC_ENTRY_BYTES: usize = 14;
        (self.layout.node_payload as usize).saturating_sub(DESC_ENTRY_BYTES * self.beta)
    }

    /// A configuration with tiny nodes, handy for tests that need deep
    /// trees from few keys.
    pub fn small_nodes(max_entries: usize) -> Self {
        TreeConfig {
            max_leaf_entries: max_entries,
            max_internal_entries: max_entries,
            layout: LayoutParams {
                node_payload: 1024,
                slots_per_mem: 4096,
                max_snapshots: 1024,
            },
            ..Default::default()
        }
    }
}

/// Shared (cross-proxy) state of one tree.
pub(crate) struct TreeShared {
    /// Resolved layout.
    pub layout: Layout,
    /// Cached immutable catalog fields for ancestry queries.
    pub vcache: VersionCache,
    /// Snapshot creation service (Fig. 7).
    pub scs: SnapshotService,
}

/// A Minuet cluster hosting one or more distributed multiversion B-trees
/// over a simulated Sinfonia cluster.
///
/// All client operations go through per-thread [`Proxy`] handles:
///
/// ```
/// use minuet_core::{MinuetCluster, TreeConfig};
///
/// // 2 memnodes hosting 1 tree, bootstrapped and ready.
/// let mc = MinuetCluster::new(2, 1, TreeConfig::default());
/// let mut p = mc.proxy();
/// p.put(0, b"k".to_vec(), b"v".to_vec()).unwrap();
/// assert_eq!(p.get(0, b"k").unwrap(), Some(b"v".to_vec()));
///
/// // A frozen snapshot scans consistently while writes continue (§4).
/// let snap = p.create_snapshot(0).unwrap();
/// p.remove(0, b"k").unwrap();
/// assert_eq!(p.scan_at(0, snap.frozen_sid, b"", 10).unwrap().len(), 1);
/// ```
pub struct MinuetCluster {
    /// The underlying Sinfonia cluster.
    pub sinfonia: Arc<SinfoniaCluster>,
    /// Tree configuration (shared by all trees).
    pub cfg: TreeConfig,
    pub(crate) trees: Vec<TreeShared>,
    /// Memnode count the layout was sized for (elastic growth ceiling).
    max_mems: usize,
    /// Serializes [`MinuetCluster::add_memnode`] calls (capacity check +
    /// membership growth + seeding as one step).
    join_lock: parking_lot::Mutex<()>,
    /// Migration / elasticity counters (see [`crate::stats`]).
    pub migration: crate::stats::MigrationCounters,
    proxy_rr: AtomicUsize,
}

impl MinuetCluster {
    /// Builds a cluster of `n_mems` memnodes hosting `n_trees` trees, and
    /// bootstraps each tree with an empty root at snapshot 0.
    pub fn new(n_mems: usize, n_trees: u32, cfg: TreeConfig) -> Arc<MinuetCluster> {
        Self::with_cluster_config(ClusterConfig::with_memnodes(n_mems), n_trees, cfg)
    }

    /// Like [`MinuetCluster::new`] but with explicit Sinfonia settings
    /// (model RTT, injected latency, durability, ...). `capacity_per_node`
    /// is recomputed from the layout.
    pub fn with_cluster_config(
        mut sin_cfg: ClusterConfig,
        n_trees: u32,
        cfg: TreeConfig,
    ) -> Arc<MinuetCluster> {
        Self::check_cfg(&cfg, n_trees);
        let n_mems = sin_cfg.memnodes;
        let max_mems = Self::layout_mems(&cfg, n_mems);
        sin_cfg.capacity_per_node = Self::capacity_for(&cfg, n_trees, max_mems);
        let sinfonia = SinfoniaCluster::new(sin_cfg);

        let mut trees = Vec::with_capacity(n_trees as usize);
        for t in 0..n_trees {
            let layout = Layout::new(t, cfg.layout, max_mems);
            let shared = TreeShared {
                layout,
                vcache: VersionCache::new(),
                scs: SnapshotService::new(),
            };
            bootstrap_tree(&sinfonia, &shared, t, n_mems);
            trees.push(shared);
        }

        Arc::new(MinuetCluster {
            sinfonia,
            cfg,
            trees,
            max_mems,
            join_lock: parking_lot::Mutex::new(()),
            migration: crate::stats::MigrationCounters::default(),
            proxy_rr: AtomicUsize::new(0),
        })
    }

    /// Reopens a whole Minuet cluster — every tree, its catalog, and all
    /// snapshots — from the durability directory configured in `sin_cfg`.
    /// The Sinfonia layer replays checkpoint images + redo logs and
    /// resolves in-doubt two-phase minitransactions; no tree is
    /// re-bootstrapped, so every committed key/version is exactly as it
    /// was. `n_trees` and `cfg.layout` must match the original cluster
    /// (they determine the address-space layout being reopened).
    pub fn restart_from_disk(
        mut sin_cfg: ClusterConfig,
        n_trees: u32,
        cfg: TreeConfig,
    ) -> std::io::Result<(Arc<MinuetCluster>, minuet_sinfonia::Resolution)> {
        Self::check_cfg(&cfg, n_trees);
        let n_mems = sin_cfg.memnodes;
        let max_mems = Self::layout_mems(&cfg, n_mems);
        sin_cfg.capacity_per_node = Self::capacity_for(&cfg, n_trees, max_mems);
        let (sinfonia, resolution) = SinfoniaCluster::restart_from_disk(sin_cfg)?;
        // Recovery reopens every memnode found on disk (elastic growth
        // persists); the layout must have been sized for all of them.
        assert!(
            sinfonia.n() <= max_mems,
            "recovered {} memnodes but the layout is sized for {max_mems}; \
             restart with the original TreeConfig::max_memnodes",
            sinfonia.n()
        );

        let mut trees = Vec::with_capacity(n_trees as usize);
        for t in 0..n_trees {
            let layout = Layout::new(t, cfg.layout, max_mems);
            let shared = TreeShared {
                layout,
                vcache: VersionCache::new(),
                scs: SnapshotService::new(),
            };
            reopen_tree(&sinfonia, &shared);
            trees.push(shared);
        }

        Ok((
            Arc::new(MinuetCluster {
                sinfonia,
                cfg,
                trees,
                max_mems,
                join_lock: parking_lot::Mutex::new(()),
                migration: crate::stats::MigrationCounters::default(),
                proxy_rr: AtomicUsize::new(0),
            }),
            resolution,
        ))
    }

    /// Opens a Minuet view over an **existing** Sinfonia cluster without
    /// bootstrapping or replaying anything — the images must already be
    /// there. This is how a client attaches to a replication *follower*:
    /// the follower's memnodes receive the primary's WAL stream (including
    /// the original bootstrap writes), so once replication has caught up
    /// past the primary's creation point, `attach` reads the catalog back
    /// exactly like [`MinuetCluster::restart_from_disk`] does after a
    /// restart. `n_trees` and `cfg.layout` must match the primary, and
    /// the cluster must have been sized with
    /// [`MinuetCluster::required_node_capacity`].
    ///
    /// Callers gate freshness with session tokens: capture
    /// [`Proxy::session_token`] on the primary, then
    /// [`MinuetCluster::wait_replicated`] here before reading.
    pub fn attach(
        sinfonia: Arc<SinfoniaCluster>,
        n_trees: u32,
        cfg: TreeConfig,
    ) -> Arc<MinuetCluster> {
        Self::check_cfg(&cfg, n_trees);
        let max_mems = Self::layout_mems(&cfg, sinfonia.n());
        assert!(
            sinfonia.n() <= max_mems,
            "attached cluster has {} memnodes but the layout is sized for {max_mems}",
            sinfonia.n()
        );
        let mut trees = Vec::with_capacity(n_trees as usize);
        for t in 0..n_trees {
            let layout = Layout::new(t, cfg.layout, max_mems);
            let shared = TreeShared {
                layout,
                vcache: VersionCache::new(),
                scs: SnapshotService::new(),
            };
            reopen_tree(&sinfonia, &shared);
            trees.push(shared);
        }
        Arc::new(MinuetCluster {
            sinfonia,
            cfg,
            trees,
            max_mems,
            join_lock: parking_lot::Mutex::new(()),
            migration: crate::stats::MigrationCounters::default(),
            proxy_rr: AtomicUsize::new(0),
        })
    }

    /// Blocks until this (follower) cluster's replication watermarks have
    /// all reached `token` (a [`Proxy::session_token`] captured on the
    /// primary), or the timeout expires; returns whether it caught up.
    /// This is the read-your-writes gate: after it returns `true`, every
    /// write the session saw committed on the primary is durably applied
    /// here.
    pub fn wait_replicated(&self, token: &[u64], timeout: Duration) -> bool {
        self.sinfonia.wait_replicated(token, timeout)
    }

    fn check_cfg(cfg: &TreeConfig, n_trees: u32) {
        assert!(n_trees > 0);
        assert!(cfg.beta >= 2, "β must be at least 2");
    }

    /// Memnode count the layout is sized for: the configured elastic
    /// ceiling, never less than the initial membership.
    fn layout_mems(cfg: &TreeConfig, n_mems: usize) -> usize {
        cfg.max_memnodes.max(n_mems)
    }

    fn capacity_for(cfg: &TreeConfig, n_trees: u32, n_mems: usize) -> u64 {
        Layout::required_capacity(n_trees, cfg.layout, n_mems).max(1 << 20)
    }

    /// Address-space capacity [`MinuetCluster::with_cluster_config`] will
    /// require of each memnode for this tree configuration. Wire-mode
    /// setups use this to size their `memnoded` daemons: the cluster
    /// validates server capacity against it at handshake time.
    pub fn required_node_capacity(cfg: &TreeConfig, n_trees: u32, n_mems: usize) -> u64 {
        Self::capacity_for(cfg, n_trees, Self::layout_mems(cfg, n_mems))
    }

    /// Number of memnodes.
    pub fn n_memnodes(&self) -> usize {
        self.sinfonia.n()
    }

    /// Number of trees hosted.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Creates a proxy. Proxies are cheap, single-threaded handles; create
    /// one per worker thread. Each proxy is assigned a home memnode
    /// (round-robin over seeded memnodes) whose replicas it prefers for
    /// replicated reads.
    pub fn proxy(self: &Arc<Self>) -> Proxy {
        let n = self.n_memnodes();
        let start = self.proxy_rr.fetch_add(1, Ordering::Relaxed);
        // Skip memnodes still joining: their replicated replicas may not
        // be seeded yet, so they cannot serve replicated reads.
        for i in 0..n {
            let home = MemNodeId(((start + i) % n) as u16);
            if !self.sinfonia.node(home).is_joining() {
                return Proxy::new(self.clone(), home);
            }
        }
        // Every memnode reports joining (a drain or fault window): fall
        // back to node 0 as a home *preference* — a proxy home is only a
        // routing hint, and ops through it surface retryable errors until
        // a replica is ready.
        let home = self.sinfonia.try_first_ready().unwrap_or(MemNodeId(0));
        Proxy::new(self.clone(), home)
    }

    /// Memnode count the layout was sized for: the elastic growth ceiling
    /// of [`MinuetCluster::add_memnode`].
    pub fn max_memnodes(&self) -> usize {
        self.max_mems
    }

    /// Brings a new memnode into the **running** cluster (elastic
    /// scale-out, the paper's headline incremental-growth claim). The
    /// node (with its own WAL/checkpoint files when durability is
    /// configured) joins the Sinfonia membership, every tree's replicated
    /// objects — TIP, GLOBAL, and all allocated catalog entries — are
    /// seeded onto it, and only then does it become eligible as a
    /// replicated-read replica, proxy home, and allocation target.
    ///
    /// Concurrent operations keep running throughout: replicated writes
    /// engage the new replica from the moment it joins (see
    /// `SinfoniaCluster::membership_guard`), and each seeding
    /// minitransaction compare-swaps against the source replica's
    /// sequence number so a racing update can never be overwritten with a
    /// stale image.
    ///
    /// The new memnode starts empty; call [`MinuetCluster::rebalance`] to
    /// shift load onto it, or let new allocations fill it round-robin.
    ///
    /// On failure (e.g. a memnode became unavailable mid-seed) the new
    /// node stays in the harmless `joining` state — it serves no
    /// replicated reads and receives no allocations — and the **next**
    /// `add_memnode` call adopts and re-seeds it instead of growing the
    /// membership again, so a failed join is simply retried.
    pub fn add_memnode(self: &Arc<Self>) -> Result<MemNodeId, Error> {
        if self.cfg.mode == ConcurrencyMode::FullValidation {
            return Err(Error::ElasticityUnsupported(
                "FullValidation replicates the internal-node seqno table at every memnode \
                 (the §3 baseline); only DirtyTraversals clusters scale out",
            ));
        }
        // Serialize concurrent joins: the capacity check and the
        // membership growth must be atomic with respect to each other.
        let _join = self.join_lock.lock();
        let id = match self.sinfonia.joining_node() {
            // Adopt a half-joined node left by an earlier failed attempt
            // (seeding is idempotent compare-and-copy).
            Some(id) => id,
            None => {
                if self.n_memnodes() >= self.max_mems {
                    return Err(Error::ClusterAtCapacity { max: self.max_mems });
                }
                self.sinfonia
                    .add_memnode()
                    .map_err(|e| Error::Storage(e.to_string()))?
            }
        };
        // Seeding must copy from a node whose replicas are themselves
        // seeded; copying from another joining node would propagate
        // garbage, so surface the (transient) condition instead.
        let src = self.sinfonia.try_first_ready().ok_or(Error::Storage(
            "no seeded memnode available as a seeding source".to_string(),
        ))?;
        for t in 0..self.trees.len() as u32 {
            seed_tree_replicas(&self.sinfonia, self.layout(t), src, id)?;
        }
        self.sinfonia.finish_join(id);
        Ok(id)
    }

    pub(crate) fn shared(&self, tree: u32) -> &TreeShared {
        &self.trees[tree as usize]
    }

    /// The layout of tree `tree` (bench/test introspection).
    pub fn layout(&self, tree: u32) -> &Layout {
        &self.trees[tree as usize].layout
    }
}

/// Writes the initial images of a tree directly into the (quiescent)
/// memnodes: empty root leaf at snapshot 0, allocator states, TIP, GLOBAL,
/// and catalog entry 0.
fn bootstrap_tree(sin: &SinfoniaCluster, shared: &TreeShared, tree: u32, n_mems: usize) {
    let layout = &shared.layout;
    let root_mem = MemNodeId((tree as usize % n_mems) as u16);
    let root_ptr = NodePtr {
        mem: root_mem,
        slot: 0,
    };

    // Root node (a blind slot-0 write on its home memnode).
    let root = Node::empty_root(0);
    let root_obj = layout.node_obj(root_ptr);
    sin.node(root_mem)
        .raw_write(root_obj.off, &encode_obj(sin.next_txid(), &root.encode()))
        .expect("bootstrap root");

    // Allocator state: slot 0 consumed on the root's memnode.
    for mem in sin.memnode_ids() {
        let st = crate::alloc::AllocState {
            bump: if mem == root_mem { 1 } else { 0 },
            free_head: crate::alloc::NIL_SLOT,
            free_count: 0,
        };
        let obj = layout.alloc_state(mem);
        sin.node(mem)
            .raw_write(obj.off, &encode_obj(sin.next_txid(), &st.encode()))
            .expect("bootstrap alloc state");
    }

    // Replicated TIP, GLOBAL and catalog[0]: identical image (same seqno)
    // on every memnode.
    let tip = TipVal {
        sid: 0,
        root: root_ptr,
    };
    let global = GlobalVal {
        next_sid: 1,
        lowest: 0,
    };
    let cat0 = CatEntry {
        root: root_ptr,
        parent: NO_PARENT,
        branch_id: 0,
        nbranches: 0,
        deleted: false,
    };
    for (obj, payload) in [
        (layout.tip(), tip.encode()),
        (layout.global(), global.encode()),
        (layout.catalog_entry(0).unwrap(), cat0.encode()),
    ] {
        let image = encode_obj(sin.next_txid(), &payload);
        for mem in sin.memnode_ids() {
            sin.node(mem)
                .raw_write(obj.at(mem).off, &image)
                .expect("bootstrap replicated object");
        }
    }

    shared.vcache.insert(0, NO_PARENT, root_ptr);
}

/// Number of replicated objects copied per seeding minitransaction.
const SEED_BATCH: usize = 64;

/// Copies one tree's replicated objects (TIP, GLOBAL, catalog entries)
/// from the seeded replica at `src` onto the joining memnode `dst`,
/// batched into compare-and-copy minitransactions: each batch compares
/// every source object's sequence number against the raw image it read,
/// so a concurrent replicated update (which engages `dst` already, since
/// membership grew first) either serializes before the copy — the compare
/// fails and the batch retries with the fresh image — or after it, and
/// overwrites `dst` with the newer value itself. Either way `dst`
/// converges to the current image.
fn seed_tree_replicas(
    sin: &SinfoniaCluster,
    layout: &Layout,
    src: MemNodeId,
    dst: MemNodeId,
) -> Result<(), Error> {
    use minuet_sinfonia::{ItemRange, Minitransaction, Outcome, SinfoniaError};

    let mut repls = vec![layout.tip(), layout.global()];
    // Entries at or above the observed next_sid are created by commits
    // that already include the new replica, so copying 0..next_sid
    // suffices. (Unwritten entries below it copy harmlessly as zeroes.)
    let graw = sin
        .node(src)
        .raw_read(layout.global().at(src).off, layout.global().cap)
        .map_err(|u| Error::Unavailable(u.0))?;
    let next_sid = crate::catalog::GlobalVal::decode(&minuet_dyntx::decode_obj(&graw).data)
        .map_or(1, |g| g.next_sid);
    for sid in 0..next_sid {
        if let Some(r) = layout.catalog_entry(sid) {
            repls.push(r);
        }
    }

    // Generous per-batch budget: each retry re-reads the batch, so this
    // only trips under pathological replicated-object churn — surfaced
    // as an error (the join stays retryable) instead of spinning forever.
    const SEED_RETRIES: usize = 10_000;
    for batch in repls.chunks(SEED_BATCH) {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > SEED_RETRIES {
                return Err(Error::TooManyRetries {
                    attempts: SEED_RETRIES,
                });
            }
            let mut m = Minitransaction::new();
            for r in batch {
                let s = r.at(src);
                let raw = sin
                    .node(src)
                    .raw_read(s.off, s.cap)
                    .map_err(|u| Error::Unavailable(u.0))?;
                m.compare(ItemRange::new(src, s.off, 8), raw[0..8].to_vec());
                m.write(ItemRange::new(dst, s.off, raw.len() as u32), raw);
            }
            match sin.execute(&m) {
                Ok(Outcome::Committed(_)) => break,
                Ok(Outcome::FailedCompare(_)) => continue, // racing update; re-read
                Err(SinfoniaError::Unavailable(mem)) => return Err(Error::Unavailable(mem)),
                Err(SinfoniaError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
                Err(SinfoniaError::OutOfBounds { mem, detail }) => {
                    panic!("seeding out of bounds at {mem}: {detail}")
                }
            }
        }
    }
    Ok(())
}

/// Re-seeds a tree's process-local caches from recovered memnode images
/// (the on-disk counterpart of [`bootstrap_tree`]): nothing is written,
/// only the initial snapshot's catalog entry is read back so ancestry
/// walks can anchor at the root of the version tree. Everything else is
/// fetched lazily through the normal catalog paths.
fn reopen_tree(sin: &SinfoniaCluster, shared: &TreeShared) {
    let layout = &shared.layout;
    let repl = layout
        .catalog_entry(0)
        .expect("catalog region holds snapshot 0");
    let mem = MemNodeId(0);
    let raw = sin
        .node(mem)
        .raw_read(repl.at(mem).off, repl.at(mem).cap)
        .expect("recovered memnode readable");
    let entry = CatEntry::decode(&minuet_dyntx::decode_obj(&raw).data)
        .expect("recovered catalog entry 0 decodes");
    shared.vcache.insert(0, NO_PARENT, entry.root);
}

#[cfg(test)]
mod tests {
    use super::*;
    use minuet_dyntx::{decode_obj, DynTx};

    #[test]
    fn bootstrap_images_readable() {
        let mc = MinuetCluster::new(3, 2, TreeConfig::default());
        for t in 0..2 {
            let layout = mc.layout(t);
            let mut tx = DynTx::new(&mc.sinfonia);
            // TIP readable from every replica and identical.
            let mut tips = Vec::new();
            for mem in mc.sinfonia.memnode_ids() {
                let raw = mc
                    .sinfonia
                    .node(mem)
                    .raw_read(layout.tip().at(mem).off, 64)
                    .unwrap();
                tips.push(decode_obj(&raw));
            }
            assert!(tips.windows(2).all(|w| w[0] == w[1]));
            let tip = TipVal::decode(&tips[0].data).unwrap();
            assert_eq!(tip.sid, 0);
            // Root decodes as an empty leaf.
            let root_raw = tx.read(layout.node_obj(tip.root)).unwrap();
            let root = Node::decode(&root_raw).unwrap();
            assert_eq!(root.height, 0);
            assert!(root.is_empty());
            assert_eq!(root.created, 0);
        }
    }

    #[test]
    fn desc_tag_on_a_full_node_never_overflows_its_slot() {
        // Regression: nodes used to split only when their content
        // exceeded the full slot payload, so a node could sit flush
        // against its slot and the 14-byte descendant-set tag pushed by
        // snapshot-root bookkeeping (or CoW tagging) overflowed the
        // object — a probabilistic panic under snapshot-heavy load.
        // Splits now reserve β desc entries of headroom
        // (`TreeConfig::split_payload_cap`).
        let cfg = TreeConfig::small_nodes(64); // node_payload = 1024
        let mc = MinuetCluster::new(1, 1, cfg);
        let mut p = mc.proxy();
        // Two values sized so the root leaf's encoded content lands
        // within one desc entry of the 1024-byte slot (15 B node
        // overhead + two 4+1+497 B entries = 1019 B). Pre-fix this did
        // not split, and the first snapshot's desc push then wrote
        // 1033 bytes into a 1024-byte slot.
        p.put(0, b"a".to_vec(), vec![0u8; 497]).unwrap();
        p.put(0, b"b".to_vec(), vec![0u8; 497]).unwrap();
        for round in 0..3u8 {
            p.create_snapshot(0).unwrap();
            p.put(0, b"a".to_vec(), vec![round; 497]).unwrap();
        }
        assert_eq!(p.get(0, b"a").unwrap(), Some(vec![2u8; 497]));
    }

    #[test]
    fn roots_spread_across_memnodes() {
        let mc = MinuetCluster::new(2, 2, TreeConfig::default());
        let mut tx = DynTx::new(&mc.sinfonia);
        let t0 = TipVal::decode(&tx.read_repl(mc.layout(0).tip(), MemNodeId(0)).unwrap()).unwrap();
        let t1 = TipVal::decode(&tx.read_repl(mc.layout(1).tip(), MemNodeId(0)).unwrap()).unwrap();
        assert_ne!(t0.root.mem, t1.root.mem);
    }
}
