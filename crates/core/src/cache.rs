//! Per-proxy cache of decoded B-tree nodes.
//!
//! Proxies cache internal nodes to traverse the upper levels of the tree
//! without round trips (§2.3), and — since the hot-path overhaul — leaf
//! nodes as well: a get over a cached leaf revalidates the observed
//! sequence number with a compare-only minitransaction instead of
//! re-shipping the full leaf image (the paper's version-number validation,
//! applied one level deeper). The cache is non-coherent: stale entries are
//! detected by fence-key checks, version-tag checks, and commit-time
//! seqno validation, all of which invalidate the offending entries and
//! retry.
//!
//! The cache is **bounded**: entries above the configured capacity are
//! evicted with a CLOCK (second-chance) sweep, so large trees cannot grow
//! a proxy's footprint without bound. Hits, misses, and evictions are
//! counted for the bench reports.

use crate::node::{Node, NodePtr};
use minuet_dyntx::SeqNo;
use minuet_obs::{Counter, ObsPlane};
use std::collections::HashMap;
use std::sync::Arc;

/// Default capacity (in nodes) of a proxy's cache; see
/// [`crate::tree::TreeConfig::node_cache_capacity`].
pub const DEFAULT_CACHE_CAPACITY: usize = 8192;

struct Slot {
    key: (u32, NodePtr),
    seqno: SeqNo,
    node: Arc<Node>,
    /// CLOCK reference bit: set on hit, cleared as the hand sweeps by.
    referenced: bool,
}

/// A per-proxy decoded-node cache keyed by `(tree, ptr)`, bounded by a
/// CLOCK eviction sweep.
pub struct NodeCache {
    map: HashMap<(u32, NodePtr), usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    hand: usize,
    capacity: usize,
    /// Lookups that hit.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Entries evicted by the CLOCK sweep (not counting explicit
    /// invalidations).
    pub evictions: Counter,
}

impl Default for NodeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Creates an empty cache bounded at `capacity` nodes (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        NodeCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            hand: 0,
            capacity: capacity.max(1),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Swaps the freshly-created counters for handles shared through
    /// `plane`'s registry, so every cache attached to the same plane
    /// aggregates into one `cache.hits` / `cache.misses` /
    /// `cache.evictions` trio and a single
    /// [`snapshot`](minuet_obs::Registry::snapshot) covers them all.
    pub fn attach(&mut self, plane: &ObsPlane) {
        self.hits = plane.registry.counter("cache.hits");
        self.misses = plane.registry.counter("cache.misses");
        self.evictions = plane.registry.counter("cache.evictions");
    }

    /// The configured capacity in nodes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a cached node.
    pub fn get(&mut self, tree: u32, ptr: NodePtr) -> Option<(SeqNo, Arc<Node>)> {
        match self.map.get(&(tree, ptr)) {
            Some(&idx) => {
                let slot = self.slots[idx].as_mut().expect("mapped slot occupied");
                slot.referenced = true;
                self.hits.inc();
                Some((slot.seqno, slot.node.clone()))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Installs a node image, evicting per CLOCK when at capacity.
    pub fn put(&mut self, tree: u32, ptr: NodePtr, seqno: SeqNo, node: Arc<Node>) {
        let key = (tree, ptr);
        if let Some(&idx) = self.map.get(&key) {
            let slot = self.slots[idx].as_mut().expect("mapped slot occupied");
            slot.seqno = seqno;
            slot.node = node;
            slot.referenced = true;
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None if self.slots.len() < self.capacity => {
                self.slots.push(None);
                self.slots.len() - 1
            }
            None => self.evict(),
        };
        self.map.insert(key, idx);
        // Fresh entries start unreferenced: only an actual hit earns the
        // second chance, so a scan of cold nodes cannot flush the hot set.
        self.slots[idx] = Some(Slot {
            key,
            seqno,
            node,
            referenced: false,
        });
    }

    /// CLOCK sweep: advance the hand, clearing reference bits, until an
    /// unreferenced entry is found; evict it and return its slot index.
    /// Terminates within two sweeps (all bits cleared after one).
    fn evict(&mut self) -> usize {
        debug_assert!(!self.slots.is_empty());
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            self.map.remove(&slot.key);
            self.slots[idx] = None;
            self.evictions.inc();
            return idx;
        }
    }

    /// Drops one entry.
    pub fn invalidate(&mut self, tree: u32, ptr: NodePtr) {
        if let Some(idx) = self.map.remove(&(tree, ptr)) {
            self.slots[idx] = None;
            self.free.push(idx);
        }
    }

    /// Drops every entry of one tree.
    pub fn invalidate_tree(&mut self, tree: u32) {
        let doomed: Vec<NodePtr> = self
            .map
            .keys()
            .filter(|(t, _)| *t == tree)
            .map(|&(_, p)| p)
            .collect();
        for ptr in doomed {
            self.invalidate(tree, ptr);
        }
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minuet_sinfonia::MemNodeId;

    fn ptr(slot: u32) -> NodePtr {
        NodePtr {
            mem: MemNodeId(0),
            slot,
        }
    }

    #[test]
    fn basic_cycle() {
        let mut c = NodeCache::new();
        assert!(c.get(0, ptr(1)).is_none());
        c.put(0, ptr(1), 9, Arc::new(Node::empty_root(0)));
        let (seq, n) = c.get(0, ptr(1)).unwrap();
        assert_eq!(seq, 9);
        assert_eq!(n.height, 0);
        c.invalidate(0, ptr(1));
        assert!(c.get(0, ptr(1)).is_none());
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses.get(), 2);
    }

    #[test]
    fn per_tree_isolation() {
        let mut c = NodeCache::new();
        c.put(0, ptr(1), 1, Arc::new(Node::empty_root(0)));
        c.put(1, ptr(1), 2, Arc::new(Node::empty_root(0)));
        assert_eq!(c.len(), 2);
        c.invalidate_tree(0);
        assert!(c.get(0, ptr(1)).is_none());
        assert!(c.get(1, ptr(1)).is_some());
    }

    #[test]
    fn capacity_bounds_and_clock_eviction() {
        let mut c = NodeCache::with_capacity(4);
        for i in 0..4 {
            c.put(0, ptr(i), i as u64, Arc::new(Node::empty_root(0)));
        }
        assert_eq!(c.len(), 4);
        // Touch 0 and 1 so the sweep prefers 2 or 3.
        c.get(0, ptr(0)).unwrap();
        c.get(0, ptr(1)).unwrap();
        for i in 4..40 {
            c.put(0, ptr(i), i as u64, Arc::new(Node::empty_root(0)));
            assert!(c.len() <= 4, "capacity exceeded at insert {i}");
        }
        assert_eq!(c.evictions.get(), 36);
    }

    #[test]
    fn second_chance_protects_hot_entries() {
        let mut c = NodeCache::with_capacity(3);
        for i in 0..3 {
            c.put(0, ptr(i), 0, Arc::new(Node::empty_root(0)));
        }
        // Keep entry 0 hot; insert a stream of cold entries.
        for i in 3..10 {
            c.get(0, ptr(0)).unwrap();
            c.put(0, ptr(i), 0, Arc::new(Node::empty_root(0)));
        }
        assert!(c.get(0, ptr(0)).is_some(), "hot entry evicted");
    }

    #[test]
    fn update_in_place_does_not_grow() {
        let mut c = NodeCache::with_capacity(2);
        c.put(0, ptr(1), 1, Arc::new(Node::empty_root(0)));
        c.put(0, ptr(1), 2, Arc::new(Node::empty_root(0)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(0, ptr(1)).unwrap().0, 2);
        assert_eq!(c.evictions.get(), 0);
    }

    #[test]
    fn invalidated_slots_are_reused() {
        let mut c = NodeCache::with_capacity(2);
        c.put(0, ptr(1), 1, Arc::new(Node::empty_root(0)));
        c.put(0, ptr(2), 2, Arc::new(Node::empty_root(0)));
        c.invalidate(0, ptr(1));
        c.put(0, ptr(3), 3, Arc::new(Node::empty_root(0)));
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.evictions.get(),
            0,
            "freed slot should be reused, not evicted"
        );
    }
}
