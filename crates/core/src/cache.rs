//! Per-proxy cache of decoded B-tree nodes.
//!
//! Proxies cache internal nodes to traverse the upper levels of the tree
//! without round trips (§2.3). The cache is non-coherent: stale entries are
//! detected by fence-key checks, version-tag checks, and commit-time
//! validation, all of which invalidate the offending entries and retry.
//! Leaves are not cached (they change too often to be worth it, matching
//! the prototype in the paper).

use crate::node::{Node, NodePtr};
use minuet_dyntx::SeqNo;
use std::collections::HashMap;
use std::sync::Arc;

/// A per-proxy decoded-node cache keyed by `(tree, ptr)`.
#[derive(Default)]
pub struct NodeCache {
    map: HashMap<(u32, NodePtr), (SeqNo, Arc<Node>)>,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl NodeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a cached node.
    pub fn get(&mut self, tree: u32, ptr: NodePtr) -> Option<(SeqNo, Arc<Node>)> {
        match self.map.get(&(tree, ptr)) {
            Some(e) => {
                self.hits += 1;
                Some(e.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs a node image.
    pub fn put(&mut self, tree: u32, ptr: NodePtr, seqno: SeqNo, node: Arc<Node>) {
        self.map.insert((tree, ptr), (seqno, node));
    }

    /// Drops one entry.
    pub fn invalidate(&mut self, tree: u32, ptr: NodePtr) {
        self.map.remove(&(tree, ptr));
    }

    /// Drops every entry of one tree.
    pub fn invalidate_tree(&mut self, tree: u32) {
        self.map.retain(|(t, _), _| *t != tree);
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minuet_sinfonia::MemNodeId;

    fn ptr(slot: u32) -> NodePtr {
        NodePtr {
            mem: MemNodeId(0),
            slot,
        }
    }

    #[test]
    fn basic_cycle() {
        let mut c = NodeCache::new();
        assert!(c.get(0, ptr(1)).is_none());
        c.put(0, ptr(1), 9, Arc::new(Node::empty_root(0)));
        let (seq, n) = c.get(0, ptr(1)).unwrap();
        assert_eq!(seq, 9);
        assert_eq!(n.height, 0);
        c.invalidate(0, ptr(1));
        assert!(c.get(0, ptr(1)).is_none());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn per_tree_isolation() {
        let mut c = NodeCache::new();
        c.put(0, ptr(1), 1, Arc::new(Node::empty_root(0)));
        c.put(1, ptr(1), 2, Arc::new(Node::empty_root(0)));
        assert_eq!(c.len(), 2);
        c.invalidate_tree(0);
        assert!(c.get(0, ptr(1)).is_none());
        assert!(c.get(1, ptr(1)).is_some());
    }
}
