//! Branching-version machinery (§5.2): bounded descendant sets and
//! discretionary copy-on-write.
//!
//! Invariant maintained on every node created at snapshot `x` and copied to
//! a set `C` of descendants of `x`: the stored descendant set `C' ⊆ C` has
//! at most β entries and every `y ∈ C` has an ancestor in `C'`. Because the
//! version-tree branching factor is also bounded by β (enforced at branch
//! creation), whenever the set would exceed β two of its pairwise
//! incomparable entries lie under the same direct child of `x`, so their
//! lowest common ancestor `z` is a *proper* descendant of `x`: the pair is
//! collapsed into `z` by materializing a **discretionary copy** of the node
//! at `z` whose own descendant set is the collapsed pair.
//!
//! Descendant-set entries carry the copies' addresses, and traversals
//! *redirect* through them (see
//! `VersionCheck::Redirect` in `traverse`): a reader at any
//! descendant of `z` that reaches the original node hops to the copy at
//! `z`, and from there (via the pair entries) to the copy that serves its
//! branch. No read-only tree is ever rewritten, and exactly one extra node
//! is allocated per collapse — matching the paper's at-most-2× space
//! accounting.

use crate::error::{Attempt, Error};
use crate::node::{DescEntry, Node, NodePtr, SnapshotId};
use crate::proxy::Proxy;
use crate::traverse::{cat_immutable_fetcher, OpCtx, PathEntry};
use crate::tree::VersionMode;
use minuet_dyntx::DynTx;

impl Proxy {
    /// Returns the original node of `path[level]` with its descendant set
    /// updated to record the copy at `ctx.sid` (located at `copy_ptr`),
    /// staging a discretionary copy when β would be exceeded.
    pub(crate) fn add_copy_to_desc(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ctx: &OpCtx,
        path: &[PathEntry],
        level: usize,
        copy_ptr: NodePtr,
    ) -> Result<Attempt<Node>, Error> {
        let orig = &path[level];
        let mut node = (*orig.node).clone();

        if self.mc.cfg.version_mode == VersionMode::Linear {
            // Each node is copied at most once along a linear history
            // (§4.2): any prior copy would have redirected the traversal.
            debug_assert!(node.desc.is_empty(), "linear node copied twice");
            node.desc = vec![DescEntry {
                sid: ctx.sid,
                ptr: copy_ptr,
            }];
            return Ok(Attempt::Done(node));
        }

        node.desc.push(DescEntry {
            sid: ctx.sid,
            ptr: copy_ptr,
        });
        let beta = self.mc.cfg.beta;
        if node.desc.len() <= beta {
            return Ok(Attempt::Done(node));
        }

        // Collapse two entries into their LCA and create the discretionary
        // copy there.
        let (i, j, z) = self
            .find_collapsible_pair(tree, &node.desc, node.created)?
            .expect("pigeonhole guarantees a collapsible pair when β bounds branching");
        let (a, b) = (node.desc[i], node.desc[j]);

        self.stats.discretionary_copies += 1;
        let mut dcopy = (*orig.node).clone();
        dcopy.created = z;
        dcopy.desc = vec![a, b];
        let zptr = self.alloc_pref(tree, orig.ptr.mem)?;
        self.write_node(tx, tree, zptr, &dcopy);

        node.desc.retain(|d| d.sid != a.sid && d.sid != b.sid);
        node.desc.push(DescEntry { sid: z, ptr: zptr });
        Ok(Attempt::Done(node))
    }

    /// Finds a pair of descendant-set entries (by index) whose LCA is a
    /// *proper* descendant of `created`, preferring the deepest
    /// (largest-id) LCA.
    fn find_collapsible_pair(
        &self,
        tree: u32,
        desc: &[DescEntry],
        created: SnapshotId,
    ) -> Result<Option<(usize, usize, SnapshotId)>, Error> {
        let shared = self.mc.shared(tree);
        let mut fetch = cat_immutable_fetcher(self.mc.clone(), tree, self.home);
        let mut best: Option<(usize, usize, SnapshotId)> = None;
        for i in 0..desc.len() {
            for j in i + 1..desc.len() {
                let z = shared.vcache.lca(desc[i].sid, desc[j].sid, &mut fetch)?;
                if z != created && best.map(|(_, _, bz)| z > bz).unwrap_or(true) {
                    best = Some((i, j, z));
                }
            }
        }
        Ok(best)
    }
}
