//! Core B-tree mutation machinery: in-place updates, splits, copy-on-write,
//! and the bubbling of pointer changes toward the root (§3, §4.1, §5).
//!
//! All functions here operate *within one optimistic attempt*: they stage
//! writes into the caller's [`DynTx`] and return `Retry` when a safety
//! check fails; nothing takes effect until the attempt's commit succeeds.

use crate::error::{attempt, Attempt, Error, RetryCause};
use crate::key::{Fence, Value};
use crate::node::{Node, NodeBody, NodePtr};
use crate::proxy::Proxy;
use crate::traverse::{LeafAccess, OpCtx, PathEntry};
use crate::tree::ConcurrencyMode;
use minuet_dyntx::DynTx;
use minuet_obs::{span, SpanKind};
use minuet_sinfonia::MemNodeId;

/// Child-pointer changes bubbling up from a lower level.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChildOps {
    /// Replace pointer `old` with `new` (after a copy-on-write or a split
    /// that relocated the child).
    pub replace: Option<(NodePtr, NodePtr)>,
    /// Insert a new separator + child (after a split).
    pub insert: Option<(Vec<u8>, NodePtr)>,
}

impl Proxy {
    /// Stages a node image write. In FullValidation mode, internal-node
    /// writes also update the node's replicated seqno-table entry at every
    /// memnode — the all-memnode engagement that makes splits expensive in
    /// the baseline (§3).
    pub(crate) fn write_node(&mut self, tx: &mut DynTx<'_>, tree: u32, ptr: NodePtr, node: &Node) {
        let layout = *self.mc.layout(tree);
        let obj = layout.node_obj(ptr);
        let payload = node.encode();
        debug_assert!(
            payload.len() <= layout.params.node_payload as usize,
            "node exceeds payload capacity: {} > {}",
            payload.len(),
            layout.params.node_payload
        );
        if self.mc.cfg.mode == ConcurrencyMode::FullValidation && node.is_internal() {
            let seqno = self.mc.sinfonia.next_txid();
            tx.write_with_seqno(obj, payload, seqno);
            for mem in self.mc.sinfonia.memnode_ids() {
                tx.add_raw_write(layout.seqtab_entry(ptr, mem), seqno.to_le_bytes().to_vec());
            }
        } else {
            tx.write(obj, payload);
        }
        self.ncache.invalidate(tree, ptr);
    }

    /// Allocates a node slot with round-robin placement.
    pub(crate) fn alloc_any(&mut self, tree: u32) -> Result<NodePtr, Error> {
        let mc = self.mc.clone();
        self.chunks.alloc(&mc.sinfonia, mc.layout(tree), tree, None)
    }

    /// Allocates a node slot on a preferred memnode (CoW copies stay with
    /// the original so leaf commits stay single-node).
    pub(crate) fn alloc_pref(&mut self, tree: u32, mem: MemNodeId) -> Result<NodePtr, Error> {
        let mc = self.mc.clone();
        self.chunks
            .alloc(&mc.sinfonia, mc.layout(tree), tree, Some(mem))
    }

    fn limits(&self, node: &Node) -> (usize, usize) {
        let payload_cap = self.mc.cfg.split_payload_cap();
        let max_entries = if node.is_internal() {
            self.mc.cfg.max_internal_entries
        } else {
            self.mc.cfg.max_leaf_entries
        };
        (payload_cap, max_entries)
    }

    /// Leaf access for operations on writable targets: the validated leaf
    /// cache serves the image and pins only its version, so commit
    /// validates with a compare (gets) or a fused compare+write (puts)
    /// instead of re-fetching. FullValidation keeps the transactional
    /// fetch — its path validation piggy-backs on the leaf fetch.
    pub(crate) fn writable_leaf_access(&self) -> LeafAccess {
        if self.mc.cfg.cache_leaves && self.mc.cfg.mode != ConcurrencyMode::FullValidation {
            LeafAccess::CachedValidated
        } else {
            LeafAccess::Transactional
        }
    }

    /// One read-only lookup attempt.
    pub(crate) fn try_get(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ctx: &OpCtx,
        key: &[u8],
    ) -> Result<Attempt<Option<Value>>, Error> {
        let access = if !ctx.writable {
            LeafAccess::Dirty
        } else {
            self.writable_leaf_access()
        };
        let path = {
            let _t = span(SpanKind::Traverse);
            attempt!(self.traverse(tx, tree, ctx, key, access, 0)?)
        };
        Ok(Attempt::Done(
            path.last().unwrap().node.leaf_get(key).cloned(),
        ))
    }

    /// One mutation attempt: applies `f` to the leaf responsible for `key`
    /// and stages all structural consequences (CoW, splits, pointer
    /// updates).
    pub(crate) fn try_mutate(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ctx: &OpCtx,
        key: &[u8],
        f: &mut dyn FnMut(&mut Node) -> Option<Value>,
    ) -> Result<Attempt<Option<Value>>, Error> {
        debug_assert!(ctx.writable);
        // Fused put: a cached, still-valid leaf skips the fetch round trip
        // — the mutation is derived from the cached image with only its
        // version pinned, so the commit minitransaction carries
        // compare(leaf seqno) + write(new image) and lands in one round
        // trip at the leaf's memnode. A stale image fails that compare and
        // the retry fetches fresh (see `Proxy::note_retry`).
        let access = self.writable_leaf_access();
        let path = {
            let _t = span(SpanKind::Traverse);
            attempt!(self.traverse(tx, tree, ctx, key, access, 0)?)
        };
        let _apply = span(SpanKind::Apply);
        let leaf_level = path.len() - 1;
        let mut new_leaf = (*path[leaf_level].node).clone();
        let old = f(&mut new_leaf);
        attempt!(self.materialize(tx, tree, ctx, &path, leaf_level, new_leaf)?);
        Ok(Attempt::Done(old))
    }

    /// Stages the updated content of `path[level]` according to the CoW
    /// rules: in place if the node already belongs to the target snapshot,
    /// otherwise copy-on-write (§4.1); splitting either way on overflow.
    pub(crate) fn materialize(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ctx: &OpCtx,
        path: &[PathEntry],
        level: usize,
        node: Node,
    ) -> Result<Attempt<()>, Error> {
        let orig = &path[level];
        let (payload_cap, max_entries) = self.limits(&node);
        let in_snapshot = orig.node.created == ctx.sid;

        if in_snapshot {
            if !node.overflows(payload_cap, max_entries) {
                self.write_node(tx, tree, orig.ptr, &node);
                // Remember the staged leaf image so a successful commit
                // re-installs it into the validated leaf cache (the write
                // above invalidated the stale entry). Without this, a
                // put-only workload would pay a fetch on every op: each
                // write evicts the leaf the next write needs.
                if !node.is_internal() && self.writable_leaf_access() == LeafAccess::CachedValidated
                {
                    self.last_leaf_written = Some((tree, orig.ptr, std::sync::Arc::new(node)));
                }
                return Ok(Attempt::Done(()));
            }
            if level == 0 {
                return self.root_split(tx, tree, ctx, orig.ptr, node);
            }
            // Split in place: the left half keeps the slot (so the parent
            // pointer stays valid); the right half is a fresh node.
            self.stats.splits += 1;
            let (left, sep, right) = node.split();
            let rptr = self.alloc_any(tree)?;
            self.write_node(tx, tree, orig.ptr, &left);
            self.write_node(tx, tree, rptr, &right);
            return self.bubble(
                tx,
                tree,
                ctx,
                path,
                level - 1,
                ChildOps {
                    replace: None,
                    insert: Some((sep, rptr)),
                },
            );
        }

        // Copy-on-write (§4.1). The root is never CoW'd during operations
        // (it is copied at snapshot creation); reaching here at level 0
        // means the tip observation was stale.
        if level == 0 {
            return Ok(Attempt::Retry(RetryCause::StaleTip));
        }
        self.stats.cow_copies += 1;
        let mut copy = node;
        copy.created = ctx.sid;
        copy.desc = Vec::new();

        if !copy.overflows(payload_cap, max_entries) {
            let cptr = self.alloc_pref(tree, orig.ptr.mem)?;
            // Tag the original with the copy (§4.2); with branching
            // versions this may trigger a discretionary copy (§5.2).
            let updated_orig = attempt!(self.add_copy_to_desc(tx, tree, ctx, path, level, cptr)?);
            self.write_node(tx, tree, orig.ptr, &updated_orig);
            self.write_node(tx, tree, cptr, &copy);
            self.bubble(
                tx,
                tree,
                ctx,
                path,
                level - 1,
                ChildOps {
                    replace: Some((orig.link, cptr)),
                    insert: None,
                },
            )
        } else {
            self.stats.splits += 1;
            let (left, sep, right) = copy.split();
            let lptr = self.alloc_pref(tree, orig.ptr.mem)?;
            let rptr = self.alloc_pref(tree, orig.ptr.mem)?;
            let updated_orig = attempt!(self.add_copy_to_desc(tx, tree, ctx, path, level, lptr)?);
            self.write_node(tx, tree, orig.ptr, &updated_orig);
            self.write_node(tx, tree, lptr, &left);
            self.write_node(tx, tree, rptr, &right);
            self.bubble(
                tx,
                tree,
                ctx,
                path,
                level - 1,
                ChildOps {
                    replace: Some((orig.link, lptr)),
                    insert: Some((sep, rptr)),
                },
            )
        }
    }

    /// Applies bubbled child-pointer operations to `path[level]` and
    /// materializes the result.
    fn bubble(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ctx: &OpCtx,
        path: &[PathEntry],
        level: usize,
        ops: ChildOps,
    ) -> Result<Attempt<()>, Error> {
        let orig = &path[level];
        let mut node = (*orig.node).clone();
        if let Some((old, new)) = ops.replace {
            if !node.replace_child(old, new) {
                // Our (possibly cached) parent image no longer references
                // the child: concurrent structural change.
                self.ncache.invalidate(tree, orig.ptr);
                return Ok(Attempt::Retry(RetryCause::Validation));
            }
        }
        if let Some((sep, ptr)) = ops.insert {
            node.insert_child(sep, ptr);
        }
        self.materialize(tx, tree, ctx, path, level, node)
    }

    /// Splits an overflowing root in place: its halves become fresh
    /// children and the root (same slot, same fences) gains a level. The
    /// root's slot never moves, so the TIP root location stays valid.
    fn root_split(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ctx: &OpCtx,
        root_ptr: NodePtr,
        node: Node,
    ) -> Result<Attempt<()>, Error> {
        self.stats.splits += 1;
        let height = node.height;
        let desc = node.desc.clone();
        let low = node.low.clone();
        let high = node.high.clone();
        debug_assert_eq!(low, Fence::NegInf);
        debug_assert_eq!(high, Fence::PosInf);
        let (left, sep, right) = node.split();
        let lptr = self.alloc_any(tree)?;
        let rptr = self.alloc_any(tree)?;
        self.write_node(tx, tree, lptr, &left);
        self.write_node(tx, tree, rptr, &right);
        let new_root = Node {
            height: height + 1,
            created: ctx.sid,
            desc,
            low,
            high,
            body: NodeBody::Internal {
                seps: vec![sep],
                kids: vec![lptr, rptr],
            },
        };
        self.write_node(tx, tree, root_ptr, &new_root);
        Ok(Attempt::Done(()))
    }
}
