//! Error types for the Minuet B-tree.

use crate::node::SnapshotId;
use minuet_dyntx::TxError;
use std::fmt;

/// A node image failed to decode (torn raw read, freed slot, or corruption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptNode {
    /// Wrong leading magic byte.
    BadMagic(u8),
    /// Buffer ended mid-field.
    Truncated,
    /// Unknown fence tag.
    BadFenceTag(u8),
}

impl fmt::Display for CorruptNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptNode::BadMagic(m) => write!(f, "bad node magic 0x{m:02x}"),
            CorruptNode::Truncated => write!(f, "truncated node image"),
            CorruptNode::BadFenceTag(t) => write!(f, "bad fence tag {t}"),
        }
    }
}

impl std::error::Error for CorruptNode {}

/// Errors surfaced by Minuet operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The operation kept aborting (validation failures / inconsistent
    /// traversals) beyond the configured retry budget. Under correct
    /// configuration this indicates pathological contention.
    TooManyRetries {
        /// Retries attempted.
        attempts: usize,
    },
    /// A memnode stayed unavailable beyond the Sinfonia retry budget.
    Unavailable(minuet_sinfonia::MemNodeId),
    /// A memnode ran out of node slots (GC cannot keep up or the tree
    /// outgrew the configured region).
    OutOfSlots(minuet_sinfonia::MemNodeId),
    /// The requested snapshot does not exist.
    NoSuchSnapshot(SnapshotId),
    /// The snapshot is read-only (a branch was already created from it) and
    /// cannot be written through this handle.
    SnapshotReadOnly(SnapshotId),
    /// The version-tree branching factor β would be exceeded by creating
    /// another branch from this snapshot.
    BranchingFactorExceeded {
        /// The snapshot at its branching limit.
        from: SnapshotId,
        /// Configured β.
        beta: usize,
    },
    /// Branching API used on a tree configured for linear snapshots.
    BranchingDisabled,
    /// The snapshot id space or catalog region is exhausted.
    CatalogFull,
    /// A stored node image failed to decode.
    Corrupt(CorruptNode),
    /// The cluster already hosts `max` memnodes — the address-space layout
    /// was sized with [`crate::tree::TreeConfig::max_memnodes`] and cannot
    /// grow past it.
    ClusterAtCapacity {
        /// The layout's memnode capacity.
        max: usize,
    },
    /// The requested elastic operation is not supported in the current
    /// configuration (e.g. `FullValidation` mode, whose replicated seqno
    /// table is exactly the all-memnode coupling the paper criticizes).
    ElasticityUnsupported(&'static str),
    /// Creating or opening a memnode's durable state failed (message
    /// carries the underlying I/O error).
    Storage(String),
    /// `bulk_load` was called on a tree whose mainline tip is not a fresh
    /// empty root (the bottom-up builder only runs against empty trees;
    /// use `multi_put` for incremental batched ingest).
    TreeNotEmpty {
        /// The non-empty tree.
        tree: u32,
    },
    /// The operation's end-to-end deadline (see
    /// [`minuet_sinfonia::deadline`]) expired before it completed. The
    /// tree may be healthy — the caller's time budget ran out first.
    DeadlineExceeded,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TooManyRetries { attempts } => {
                write!(f, "operation aborted {attempts} times; giving up")
            }
            Error::Unavailable(m) => write!(f, "memnode {m} unavailable"),
            Error::OutOfSlots(m) => write!(f, "memnode {m} out of node slots"),
            Error::NoSuchSnapshot(s) => write!(f, "snapshot {s} does not exist"),
            Error::SnapshotReadOnly(s) => write!(f, "snapshot {s} is read-only"),
            Error::BranchingFactorExceeded { from, beta } => {
                write!(f, "snapshot {from} already has β={beta} branches")
            }
            Error::BranchingDisabled => write!(f, "tree configured for linear snapshots"),
            Error::CatalogFull => write!(f, "snapshot catalog exhausted"),
            Error::Corrupt(c) => write!(f, "corrupt node: {c}"),
            Error::ClusterAtCapacity { max } => {
                write!(
                    f,
                    "cluster already at its layout capacity of {max} memnodes"
                )
            }
            Error::ElasticityUnsupported(why) => {
                write!(f, "elastic operation unsupported: {why}")
            }
            Error::Storage(why) => write!(f, "memnode storage error: {why}"),
            Error::TreeNotEmpty { tree } => {
                write!(
                    f,
                    "bulk_load requires an empty tree, but tree {tree} has data"
                )
            }
            Error::DeadlineExceeded => write!(f, "operation deadline exceeded"),
        }
    }
}

impl std::error::Error for Error {}

impl From<CorruptNode> for Error {
    fn from(c: CorruptNode) -> Self {
        Error::Corrupt(c)
    }
}

/// Internal result of one optimistic attempt: either done, or abort and
/// retry (validation failure, fence violation, version-tag staleness, ...).
#[derive(Debug)]
pub(crate) enum Attempt<T> {
    /// Attempt succeeded.
    Done(T),
    /// Abort and retry the whole operation.
    Retry(RetryCause),
}

/// Why an attempt aborted (kept for statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryCause {
    /// Commit-time (or piggy-backed) validation failed.
    Validation,
    /// Search key fell outside a visited node's fences (§3).
    FenceViolation,
    /// Child height did not decrease by one (§3, "fatal inconsistency").
    HeightMismatch,
    /// The node was copied to a snapshot covering the target (§4.2/§5.2).
    StaleVersion,
    /// The cached/observed tip or catalog entry was stale.
    StaleTip,
    /// A node image failed to decode during a dirty read.
    TornRead,
    /// No memnode was ready to bind replicated-object compares (every
    /// member joining or of unknown state — a drain or fault window).
    NoReadyReplica,
}

/// Converts a dyntx error into an attempt disposition.
pub(crate) fn tx_attempt<T>(e: TxError) -> Result<Attempt<T>, Error> {
    match e {
        TxError::Validation => Ok(Attempt::Retry(RetryCause::Validation)),
        TxError::Unavailable(m) => Err(Error::Unavailable(m)),
        TxError::NoReadyReplica => Ok(Attempt::Retry(RetryCause::NoReadyReplica)),
        TxError::DeadlineExceeded => Err(Error::DeadlineExceeded),
    }
}

/// Unwraps `Attempt::Done` or early-returns the `Retry` from the enclosing
/// `Result<Attempt<_>, Error>` function.
macro_rules! attempt {
    ($e:expr) => {
        match $e {
            $crate::error::Attempt::Done(v) => v,
            $crate::error::Attempt::Retry(c) => return Ok($crate::error::Attempt::Retry(c)),
        }
    };
}
pub(crate) use attempt;
