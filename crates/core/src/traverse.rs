//! Transactional B-tree traversal (Figure 5) with the safety checks that
//! make dirty reads sound: fence keys (§3), the fatal height-consistency
//! check (§3), and version-tag checks for snapshots and branching versions
//! (§4.2, §5.2).

use crate::catalog::CatEntry;
use crate::error::{tx_attempt, Attempt, Error, RetryCause};
use crate::key::in_range;
use crate::node::{Node, NodePtr, SnapshotId};
use crate::proxy::Proxy;
use crate::tree::{ConcurrencyMode, MinuetCluster, VersionMode};
use minuet_dyntx::{DynTx, SeqNo, TxKey};
use minuet_sinfonia::{MemNodeId, Minitransaction, Outcome};
use std::sync::Arc;

/// Resolved target of one operation attempt.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OpCtx {
    /// Snapshot the operation acts on.
    pub sid: SnapshotId,
    /// Root node of that snapshot.
    pub root: NodePtr,
    /// True if the target is a validated writable tip.
    pub writable: bool,
}

/// How the final (stop-height) node of a traversal is fetched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LeafAccess {
    /// Added to the read set (validated at commit / piggy-backed).
    Transactional,
    /// Like `Transactional`, but a still-cached leaf is served from the
    /// proxy's node cache with only its observed seqno pinned into the
    /// read set: commit then validates it with a compare-only
    /// minitransaction (tens of bytes) instead of re-fetching the image.
    /// A stale cached leaf fails that validation, is invalidated, and the
    /// retry fetches fresh. Used by gets on writable targets.
    CachedValidated,
    /// Dirty read: reads on read-only snapshots never validate (§4.2).
    Dirty,
    /// Routing probe for the batch path: the stop node is dirty-read
    /// through the proxy's node cache (so repeated routes are free), and a
    /// root shallower than the requested stop height terminates the
    /// traversal at the root instead of aborting — the caller handles
    /// single-level trees itself.
    Route,
}

/// One node on a traversed path.
#[derive(Clone)]
pub(crate) struct PathEntry {
    /// Where the node actually lives (after following copy redirects).
    pub ptr: NodePtr,
    /// The pointer by which the *parent* refers to this level (before
    /// redirects); parent child-pointer updates must replace this value.
    pub link: NodePtr,
    /// Version observed.
    pub seqno: SeqNo,
    /// Decoded image.
    pub node: Arc<Node>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FetchStyle {
    DirtyCached,
    DirtyUncached,
    Transactional,
    /// Transactional with the validated-leaf-cache fast path: a cached
    /// leaf short-circuits the fetch, pinning its seqno for commit-time
    /// validation.
    ValidatedLeaf,
}

/// Reads a catalog entry without any transactional tracking (one round
/// trip to the preferred replica). Used for ancestry resolution and
/// read-only snapshot lookups.
pub(crate) fn fetch_cat_raw(
    mc: &MinuetCluster,
    tree: u32,
    sid: SnapshotId,
    prefer: MemNodeId,
) -> Result<Option<(SeqNo, CatEntry)>, Error> {
    let layout = mc.layout(tree);
    let repl = layout
        .catalog_entry(sid)
        .ok_or(Error::NoSuchSnapshot(sid))?;
    let obj = repl.at(prefer);
    let mut m = Minitransaction::new();
    m.read(obj.full_range());
    match mc.sinfonia.execute(&m) {
        Err(minuet_sinfonia::SinfoniaError::Unavailable(mem)) => Err(Error::Unavailable(mem)),
        Err(minuet_sinfonia::SinfoniaError::DeadlineExceeded) => Err(Error::DeadlineExceeded),
        Err(minuet_sinfonia::SinfoniaError::OutOfBounds { .. }) => Err(Error::NoSuchSnapshot(sid)),
        Ok(Outcome::FailedCompare(_)) => unreachable!("read-only minitx"),
        Ok(Outcome::Committed(res)) => {
            let val = minuet_dyntx::decode_obj(&res.data[0]);
            if val.is_unwritten() {
                return Ok(None);
            }
            Ok(CatEntry::decode(&val.data).map(|e| (val.seqno, e)))
        }
    }
}

/// Resolves parent/root of a snapshot for the version cache.
pub(crate) fn cat_immutable_fetcher(
    mc: Arc<MinuetCluster>,
    tree: u32,
    prefer: MemNodeId,
) -> impl FnMut(SnapshotId) -> Result<(SnapshotId, NodePtr), Error> {
    move |sid| match fetch_cat_raw(&mc, tree, sid, prefer)? {
        Some((_, e)) => Ok((e.parent, e.root)),
        None => Err(Error::NoSuchSnapshot(sid)),
    }
}

/// Outcome of the version-tag check at one node (§4.2/§5.2).
pub(crate) enum VersionCheck {
    /// The node is the correct version for the target snapshot.
    Current,
    /// The node cannot serve the target snapshot and no redirect is
    /// possible: abort the attempt.
    Stale,
    /// The node was copied at an ancestor of the target snapshot: the
    /// traversal continues at the copy (branching mode, §5.2).
    Redirect(NodePtr),
}

impl Proxy {
    /// Checks a node's version tags against the target snapshot (§4.2 for
    /// linear snapshots, §5.2 for branching versions).
    pub(crate) fn version_check(
        &self,
        tree: u32,
        node: &Node,
        sid: SnapshotId,
    ) -> Result<VersionCheck, Error> {
        let mc = &self.mc;
        match mc.cfg.version_mode {
            VersionMode::Linear => {
                // Ancestry along a path is plain ordering. Linear
                // traversals abort on a covering copy (§4.2): the retry
                // re-reads the parent, whose pointer was updated in the
                // same commit that made the copy.
                if node.created > sid {
                    return Ok(VersionCheck::Stale);
                }
                Ok(match node.desc.iter().find(|d| d.sid <= sid) {
                    Some(_) => VersionCheck::Stale,
                    None => VersionCheck::Current,
                })
            }
            VersionMode::Branching => {
                let shared = mc.shared(tree);
                let mut fetch = cat_immutable_fetcher(mc.clone(), tree, self.home);
                if !shared
                    .vcache
                    .is_ancestor_or_self(node.created, sid, &mut fetch)?
                {
                    return Ok(VersionCheck::Stale);
                }
                // Descendant-set entries are pairwise incomparable, so at
                // most one can cover `sid`.
                for d in &node.desc {
                    if shared.vcache.is_ancestor_or_self(d.sid, sid, &mut fetch)? {
                        return Ok(VersionCheck::Redirect(d.ptr));
                    }
                }
                Ok(VersionCheck::Current)
            }
        }
    }

    fn fetch_node(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ptr: NodePtr,
        style: FetchStyle,
    ) -> Result<Attempt<PathEntry>, Error> {
        let layout = *self.mc.layout(tree);
        let obj = layout.node_obj(ptr);
        let cache_ok = self.mc.cfg.cache_internal_nodes;
        let cache_leaves = self.mc.cfg.cache_leaves;
        match style {
            FetchStyle::DirtyCached if cache_ok => {
                if let Some((seqno, node)) = self.ncache.get(tree, ptr) {
                    tx.note_dirty(obj, seqno);
                    return Ok(Attempt::Done(PathEntry {
                        ptr,
                        link: ptr,
                        seqno,
                        node,
                    }));
                }
            }
            FetchStyle::ValidatedLeaf if cache_leaves => {
                if let Some((seqno, node)) = self.ncache.get(tree, ptr) {
                    if node.height == 0 {
                        // Serve the image from the cache; pin only its
                        // version — commit revalidates with a compare-only
                        // minitransaction, and a stale entry surfaces as a
                        // validation retry that invalidates it (see
                        // `Proxy::note_retry`).
                        tx.assume_version(TxKey::Plain(obj), seqno);
                        self.last_leaf_assumed = Some((tree, ptr));
                        self.stats.leaf_cache_hits += 1;
                        return Ok(Attempt::Done(PathEntry {
                            ptr,
                            link: ptr,
                            seqno,
                            node,
                        }));
                    }
                }
                self.stats.leaf_cache_misses += 1;
            }
            _ => {}
        }
        let (seqno, data, tracked) = match style {
            FetchStyle::Transactional | FetchStyle::ValidatedLeaf => match tx.read(obj) {
                Ok(data) => (
                    tx.observed_seqno(&TxKey::Plain(obj)).unwrap_or(0),
                    data,
                    true,
                ),
                Err(e) => return tx_attempt(e),
            },
            _ => match tx.dirty_read(obj) {
                Ok(val) => (val.seqno, val.data, false),
                Err(e) => return tx_attempt(e),
            },
        };
        match Node::decode(&data) {
            Ok(node) => {
                let node = Arc::new(node);
                if !tracked && node.is_internal() && cache_ok {
                    self.ncache.put(tree, ptr, seqno, node.clone());
                } else if tracked && node.height == 0 && cache_leaves {
                    // Leaves observed at a validated version enter the
                    // cache so the next get revalidates instead of
                    // re-fetching.
                    self.ncache.put(tree, ptr, seqno, node.clone());
                }
                Ok(Attempt::Done(PathEntry {
                    ptr,
                    link: ptr,
                    seqno,
                    node,
                }))
            }
            Err(_) => {
                // Freed slot or torn image: the pointer that led here is
                // stale.
                self.ncache.invalidate(tree, ptr);
                Ok(Attempt::Retry(RetryCause::TornRead))
            }
        }
    }

    fn invalidate_path(&mut self, tree: u32, path: &[PathEntry]) {
        for e in path {
            self.ncache.invalidate(tree, e.ptr);
        }
    }

    /// Traverses from `ctx.root` toward `key`, stopping at the node of
    /// height `stop_height` (0 = leaf). Internal levels use dirty reads
    /// (or, in FullValidation mode, unvalidated reads whose seqnos are
    /// compared against the replicated table at the leaf's memnode); the
    /// stop node is fetched per `leaf_access`.
    ///
    /// On any safety-check failure the visited path is dropped from the
    /// node cache and `Retry` is returned, per Figure 5's `T.Abort()`.
    pub(crate) fn traverse(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ctx: &OpCtx,
        key: &[u8],
        leaf_access: LeafAccess,
        stop_height: u8,
    ) -> Result<Attempt<Vec<PathEntry>>, Error> {
        let mode = self.mc.cfg.mode;
        let layout = *self.mc.layout(tree);
        let mut path: Vec<PathEntry> = Vec::with_capacity(8);
        let mut cur = ctx.root;
        loop {
            let expect_stop = path
                .last()
                .map(|p| p.node.height == stop_height + 1)
                .unwrap_or(false);

            // Baseline mode validates the whole path at the leaf's memnode:
            // add the seqno-table compares before fetching the leaf so the
            // fetch minitransaction piggy-backs them (§2.3).
            if expect_stop
                && mode == ConcurrencyMode::FullValidation
                && leaf_access == LeafAccess::Transactional
            {
                for e in &path {
                    // Nodes this transaction already rewrote carry pinned
                    // fresh seqnos; their table entries are raw-written in
                    // the same commit, so comparing the old value would
                    // self-conflict.
                    if tx.is_staged(&TxKey::Plain(layout.node_obj(e.ptr))) {
                        continue;
                    }
                    tx.add_raw_compare(
                        layout.seqtab_entry(e.ptr, cur.mem),
                        e.seqno.to_le_bytes().to_vec(),
                    );
                }
            }

            let style = if expect_stop {
                match leaf_access {
                    LeafAccess::Transactional => FetchStyle::Transactional,
                    LeafAccess::CachedValidated => FetchStyle::ValidatedLeaf,
                    LeafAccess::Dirty => FetchStyle::DirtyUncached,
                    LeafAccess::Route => FetchStyle::DirtyCached,
                }
            } else {
                FetchStyle::DirtyCached
            };

            // Fetch, following copy redirects (§5.2): a bounded chain of
            // forwarding hops through descendant-set entries.
            let link = cur;
            let mut hops = 0u32;
            let entry = loop {
                let mut e = match self.fetch_node(tx, tree, cur, style)? {
                    Attempt::Done(e) => e,
                    Attempt::Retry(c) => {
                        self.invalidate_path(tree, &path);
                        return Ok(Attempt::Retry(c));
                    }
                };
                match self.version_check(tree, &e.node, ctx.sid)? {
                    VersionCheck::Current => {
                        e.link = link;
                        break e;
                    }
                    VersionCheck::Stale => {
                        self.ncache.invalidate(tree, e.ptr);
                        self.invalidate_path(tree, &path);
                        return Ok(Attempt::Retry(RetryCause::StaleVersion));
                    }
                    VersionCheck::Redirect(next) => {
                        hops += 1;
                        if hops > 64 {
                            self.invalidate_path(tree, &path);
                            return Ok(Attempt::Retry(RetryCause::StaleVersion));
                        }
                        cur = next;
                    }
                }
            };

            // Fence check (Fig. 5 lines 5 and 22).
            if !in_range(&entry.node.low, &entry.node.high, key) {
                self.ncache.invalidate(tree, entry.ptr);
                self.invalidate_path(tree, &path);
                return Ok(Attempt::Retry(RetryCause::FenceViolation));
            }
            // Height consistency (Fig. 5 line 15: fatal inconsistency).
            if let Some(prev) = path.last() {
                if entry.node.height != prev.node.height - 1 {
                    self.ncache.invalidate(tree, entry.ptr);
                    self.invalidate_path(tree, &path);
                    return Ok(Attempt::Retry(RetryCause::HeightMismatch));
                }
            } else if entry.node.height < stop_height {
                if leaf_access == LeafAccess::Route {
                    // Routing a tree shallower than the stop level (e.g.
                    // the root is still a leaf): stop at the root.
                    path.push(entry);
                    return Ok(Attempt::Done(path));
                }
                // Root shallower than the requested stop level: stale root
                // observation.
                return Ok(Attempt::Retry(RetryCause::StaleTip));
            }

            let at_stop = entry.node.height == stop_height;
            if at_stop
                && path.is_empty()
                && matches!(
                    leaf_access,
                    LeafAccess::Transactional | LeafAccess::CachedValidated
                )
                && matches!(
                    mode,
                    ConcurrencyMode::DirtyTraversals | ConcurrencyMode::FullValidation
                )
            {
                // Single-level tree: the root is the leaf and was fetched
                // through the dirty/cached path. Promote it into the read
                // set at the observed version. Gets need only the version
                // pin (their commit is compare-only); mutations keep the
                // full image so write promotion sees the value.
                let obj = layout.node_obj(entry.ptr);
                if tx.observed_seqno(&TxKey::Plain(obj)).is_none() {
                    if leaf_access == LeafAccess::CachedValidated {
                        tx.assume_version(TxKey::Plain(obj), entry.seqno);
                        self.last_leaf_assumed = Some((tree, entry.ptr));
                    } else {
                        tx.assume(TxKey::Plain(obj), entry.seqno, entry.node.encode());
                    }
                }
            }

            let next = if at_stop {
                None
            } else {
                Some(entry.node.child_for(key))
            };
            path.push(entry);
            match next {
                None => return Ok(Attempt::Done(path)),
                Some(ptr) => cur = ptr,
            }
        }
    }
}
