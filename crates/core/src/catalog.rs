//! The snapshot catalog and version tree (§5.1).
//!
//! Every snapshot has a catalog entry — a replicated object holding the
//! snapshot's root location, its parent in the version tree, its *branch
//! id* (the first branch created from it; `0` = none, i.e. the snapshot is
//! a writable tip), a branch count (to enforce the version-tree branching
//! factor β), and a deleted flag for GC.
//!
//! In the paper the catalog is a dedicated B-tree whose leaves are
//! replicated at every memnode and cached at proxies. We store each entry
//! directly as a replicated object indexed by snapshot id (ids are dense),
//! which preserves the behaviour the paper relies on — cheap validated
//! reads from any replica, write-all updates — with a simpler
//! representation (see DESIGN.md §3.7).
//!
//! Immutable fields (`root`, `parent`) are cached process-wide in a
//! [`VersionCache`]; mutable fields (`branch_id`, `nbranches`, `deleted`)
//! are always read transactionally when a decision depends on them.

use crate::error::Error;
use crate::node::{NodePtr, SnapshotId};
use minuet_sinfonia::MemNodeId;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Sentinel parent for the initial snapshot (id 0).
pub const NO_PARENT: u64 = u64::MAX;

/// Payload of the replicated TIP object: the mainline tip snapshot id and
/// its root location (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TipVal {
    /// Mainline tip snapshot id.
    pub sid: SnapshotId,
    /// Root node of the tip snapshot.
    pub root: NodePtr,
}

impl TipVal {
    /// Serializes the tip payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(14);
        v.extend_from_slice(&self.sid.to_le_bytes());
        v.extend_from_slice(&self.root.mem.0.to_le_bytes());
        v.extend_from_slice(&self.root.slot.to_le_bytes());
        v
    }

    /// Deserializes the tip payload.
    pub fn decode(raw: &[u8]) -> Option<TipVal> {
        if raw.len() < 14 {
            return None;
        }
        Some(TipVal {
            sid: u64::from_le_bytes(raw[0..8].try_into().unwrap()),
            root: NodePtr {
                mem: MemNodeId(u16::from_le_bytes(raw[8..10].try_into().unwrap())),
                slot: u32::from_le_bytes(raw[10..14].try_into().unwrap()),
            },
        })
    }
}

/// Payload of the replicated GLOBAL header object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalVal {
    /// Next snapshot id to assign.
    pub next_sid: SnapshotId,
    /// Lowest snapshot id still queryable (GC watermark, §4.4).
    pub lowest: SnapshotId,
}

impl GlobalVal {
    /// Serializes the header payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&self.next_sid.to_le_bytes());
        v.extend_from_slice(&self.lowest.to_le_bytes());
        v
    }

    /// Deserializes the header payload.
    pub fn decode(raw: &[u8]) -> Option<GlobalVal> {
        if raw.len() < 16 {
            return None;
        }
        Some(GlobalVal {
            next_sid: u64::from_le_bytes(raw[0..8].try_into().unwrap()),
            lowest: u64::from_le_bytes(raw[8..16].try_into().unwrap()),
        })
    }
}

/// One catalog entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CatEntry {
    /// Root node of this snapshot.
    pub root: NodePtr,
    /// Parent snapshot in the version tree ([`NO_PARENT`] for snapshot 0).
    pub parent: SnapshotId,
    /// First branch created from this snapshot; `0` = none (writable tip).
    pub branch_id: SnapshotId,
    /// Number of branches created from this snapshot (bounded by β).
    pub nbranches: u8,
    /// True once the snapshot has been deleted (GC may reclaim).
    pub deleted: bool,
}

impl CatEntry {
    /// True if this snapshot is a writable tip (§5.1: branch id NULL).
    pub fn is_writable(&self) -> bool {
        self.branch_id == 0 && !self.deleted
    }

    /// Serializes the entry.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&self.root.mem.0.to_le_bytes());
        v.extend_from_slice(&self.root.slot.to_le_bytes());
        v.extend_from_slice(&self.parent.to_le_bytes());
        v.extend_from_slice(&self.branch_id.to_le_bytes());
        v.push(self.nbranches);
        v.push(self.deleted as u8);
        v
    }

    /// Deserializes an entry; `None` for an unwritten slot.
    pub fn decode(raw: &[u8]) -> Option<CatEntry> {
        if raw.len() < 24 {
            return None;
        }
        Some(CatEntry {
            root: NodePtr {
                mem: MemNodeId(u16::from_le_bytes(raw[0..2].try_into().unwrap())),
                slot: u32::from_le_bytes(raw[2..6].try_into().unwrap()),
            },
            parent: u64::from_le_bytes(raw[6..14].try_into().unwrap()),
            branch_id: u64::from_le_bytes(raw[14..22].try_into().unwrap()),
            nbranches: raw[22],
            deleted: raw[23] != 0,
        })
    }
}

/// Process-wide cache of the *immutable* catalog fields, backing ancestry
/// queries during traversals without round trips.
#[derive(Default)]
pub struct VersionCache {
    map: RwLock<HashMap<SnapshotId, (SnapshotId, NodePtr)>>,
}

impl VersionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a snapshot's parent and root.
    pub fn insert(&self, sid: SnapshotId, parent: SnapshotId, root: NodePtr) {
        self.map.write().insert(sid, (parent, root));
    }

    /// Parent of `sid`, if cached.
    pub fn parent(&self, sid: SnapshotId) -> Option<SnapshotId> {
        self.map.read().get(&sid).map(|e| e.0)
    }

    /// Root of `sid`, if cached.
    pub fn root(&self, sid: SnapshotId) -> Option<NodePtr> {
        self.map.read().get(&sid).map(|e| e.1)
    }

    /// Walks parents from `b` toward the root to decide whether `a` is an
    /// ancestor of (or equal to) `b`. Parent ids are always smaller than
    /// child ids, so the walk stops as soon as the current id drops below
    /// `a`. Missing entries are resolved through `fetch` (which should
    /// consult the catalog and populate the cache).
    pub fn is_ancestor_or_self(
        &self,
        a: SnapshotId,
        b: SnapshotId,
        mut fetch: impl FnMut(SnapshotId) -> Result<(SnapshotId, NodePtr), Error>,
    ) -> Result<bool, Error> {
        let mut cur = b;
        loop {
            if cur == a {
                return Ok(true);
            }
            if cur < a || cur == NO_PARENT {
                return Ok(false);
            }
            let parent = match self.parent(cur) {
                Some(p) => p,
                None => {
                    let (p, root) = fetch(cur)?;
                    self.insert(cur, p, root);
                    p
                }
            };
            if parent == NO_PARENT {
                return Ok(false);
            }
            cur = parent;
        }
    }

    /// Lowest common ancestor of `a` and `b` (requires both paths cached
    /// or fetchable).
    pub fn lca(
        &self,
        a: SnapshotId,
        b: SnapshotId,
        mut fetch: impl FnMut(SnapshotId) -> Result<(SnapshotId, NodePtr), Error>,
    ) -> Result<SnapshotId, Error> {
        let mut pa = a;
        let mut pb = b;
        // Parents have smaller ids: repeatedly lift the larger one.
        loop {
            if pa == pb {
                return Ok(pa);
            }
            let lift =
                |cache: &Self,
                 cur: SnapshotId,
                 fetch: &mut dyn FnMut(SnapshotId) -> Result<(SnapshotId, NodePtr), Error>|
                 -> Result<SnapshotId, Error> {
                    if let Some(p) = cache.parent(cur) {
                        return Ok(p);
                    }
                    let (p, root) = fetch(cur)?;
                    cache.insert(cur, p, root);
                    Ok(p)
                };
            if pa > pb {
                pa = lift(self, pa, &mut fetch)?;
                if pa == NO_PARENT {
                    return Err(Error::NoSuchSnapshot(a));
                }
            } else {
                pb = lift(self, pb, &mut fetch)?;
                if pb == NO_PARENT {
                    return Err(Error::NoSuchSnapshot(b));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(slot: u32) -> NodePtr {
        NodePtr {
            mem: MemNodeId(0),
            slot,
        }
    }

    #[test]
    fn tip_roundtrip() {
        let t = TipVal {
            sid: 42,
            root: NodePtr {
                mem: MemNodeId(3),
                slot: 77,
            },
        };
        assert_eq!(TipVal::decode(&t.encode()), Some(t));
        assert_eq!(TipVal::decode(&[]), None);
    }

    #[test]
    fn global_roundtrip() {
        let g = GlobalVal {
            next_sid: 9,
            lowest: 4,
        };
        assert_eq!(GlobalVal::decode(&g.encode()), Some(g));
    }

    #[test]
    fn cat_entry_roundtrip() {
        let e = CatEntry {
            root: ptr(5),
            parent: 2,
            branch_id: 7,
            nbranches: 2,
            deleted: true,
        };
        assert_eq!(CatEntry::decode(&e.encode()), Some(e));
        assert!(!e.is_writable());
        let w = CatEntry {
            branch_id: 0,
            deleted: false,
            ..e
        };
        assert!(w.is_writable());
    }

    /// Version tree used below (ids in parentheses are parents):
    /// 0 -> 1 -> 2 -> 4        (mainline)
    ///      1 -> 3 -> 5
    #[test]
    fn ancestry_walks() {
        let vc = VersionCache::new();
        vc.insert(0, NO_PARENT, ptr(0));
        vc.insert(1, 0, ptr(1));
        vc.insert(2, 1, ptr(2));
        vc.insert(3, 1, ptr(3));
        vc.insert(4, 2, ptr(4));
        vc.insert(5, 3, ptr(5));
        let no_fetch = |s: SnapshotId| -> Result<(SnapshotId, NodePtr), Error> {
            Err(Error::NoSuchSnapshot(s))
        };
        assert!(vc.is_ancestor_or_self(1, 4, no_fetch).unwrap());
        assert!(vc.is_ancestor_or_self(1, 5, no_fetch).unwrap());
        assert!(vc.is_ancestor_or_self(4, 4, no_fetch).unwrap());
        assert!(!vc.is_ancestor_or_self(2, 5, no_fetch).unwrap());
        assert!(!vc.is_ancestor_or_self(3, 4, no_fetch).unwrap());
        assert!(!vc.is_ancestor_or_self(4, 1, no_fetch).unwrap());
    }

    #[test]
    fn ancestry_fetches_missing() {
        let vc = VersionCache::new();
        vc.insert(0, NO_PARENT, ptr(0));
        // 1 and 2 not cached: provided by fetch.
        let fetched = std::cell::RefCell::new(Vec::new());
        let ok = vc
            .is_ancestor_or_self(0, 2, |s| {
                fetched.borrow_mut().push(s);
                Ok((s - 1, ptr(s as u32)))
            })
            .unwrap();
        assert!(ok);
        assert_eq!(*fetched.borrow(), vec![2, 1]);
        // Now cached.
        assert_eq!(vc.parent(2), Some(1));
    }

    #[test]
    fn lca_queries() {
        let vc = VersionCache::new();
        vc.insert(0, NO_PARENT, ptr(0));
        vc.insert(1, 0, ptr(1));
        vc.insert(2, 1, ptr(2));
        vc.insert(3, 1, ptr(3));
        vc.insert(4, 2, ptr(4));
        vc.insert(5, 3, ptr(5));
        let no_fetch = |s: SnapshotId| -> Result<(SnapshotId, NodePtr), Error> {
            Err(Error::NoSuchSnapshot(s))
        };
        assert_eq!(vc.lca(4, 5, no_fetch).unwrap(), 1);
        assert_eq!(vc.lca(2, 4, no_fetch).unwrap(), 2);
        assert_eq!(vc.lca(3, 3, no_fetch).unwrap(), 3);
        assert_eq!(vc.lca(4, 3, no_fetch).unwrap(), 1);
    }
}
