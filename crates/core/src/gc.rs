//! Garbage collection of superseded node versions (§4.4) and deleted
//! branches (§5.2).
//!
//! Minuet records a global *lowest snapshot id* (the watermark): snapshots
//! below it can no longer be queried. A background sweep walks every
//! memnode's node region, identifies physical nodes that no live snapshot
//! can reach — a node created at `x` and copied to `y` serves exactly the
//! snapshots that descend from `x` but not from any copy target — and
//! returns their slots to the allocator's free list.
//!
//! The scan itself uses unsynchronized raw reads (cheap, possibly torn);
//! every freeing decision is then *confirmed transactionally*: the slot is
//! re-read inside a dynamic transaction, the condition re-evaluated, and
//! the free-list push commits only if the slot was unchanged.

use crate::alloc::{push_free_segment, AllocState};
use crate::catalog::GlobalVal;
use crate::error::Error;
use crate::node::{Node, NodePtr, SnapshotId};
use crate::proxy::Proxy;
use crate::traverse::fetch_cat_raw;
use crate::tree::VersionMode;
use minuet_dyntx::{decode_obj, DynTx, TxError};
use minuet_sinfonia::MemNodeId;
use std::collections::HashMap;

/// Result of one GC sweep.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Slots examined.
    pub scanned: u64,
    /// Slots reclaimed.
    pub freed: u64,
    /// Candidates that failed transactional confirmation (raced with a
    /// writer); they will be reconsidered by the next sweep.
    pub skipped: u64,
}

/// Immutable context for liveness decisions during one sweep.
struct LivenessCtx {
    live: Vec<SnapshotId>,
    /// parent pointers for ancestry tests (snapshot -> parent).
    parents: HashMap<SnapshotId, SnapshotId>,
    /// root slot -> owning snapshot.
    roots: HashMap<NodePtr, SnapshotId>,
    linear: bool,
    lowest: SnapshotId,
}

impl LivenessCtx {
    fn is_ancestor_or_self(&self, a: SnapshotId, b: SnapshotId) -> bool {
        if self.linear {
            return a <= b;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur < a {
                return false;
            }
            match self.parents.get(&cur) {
                Some(&p) if p != crate::catalog::NO_PARENT => cur = p,
                _ => return false,
            }
        }
    }

    /// Can any live snapshot still reach this node?
    fn node_live(&self, ptr: NodePtr, node: &Node) -> bool {
        if let Some(&owner) = self.roots.get(&ptr) {
            // Roots serve exactly their own snapshot (each snapshot gets a
            // fresh root copy at creation). The catalog keeps entries for
            // dead snapshots, so a recycled root slot may still be named by
            // one: the occupant is only *that* snapshot's root if the
            // creation tags match (snapshot ids are never reused, so a
            // recycled occupant always carries a newer tag).
            if node.created == owner {
                return self.live.contains(&owner);
            }
        }
        if self.linear {
            // Precise rule (§4.4): the node serves [created, first-copy);
            // it is dead iff it was copied at or below the watermark.
            return match node.desc.first() {
                Some(d) => d.sid > self.lowest,
                None => true,
            };
        }
        // Branching mode is conservative: superseded nodes still act as
        // redirect routers for their copies (descendant-set chains), so a
        // node is kept while *any* live snapshot descends from its
        // creation snapshot. Deleted branches and watermarked prefixes
        // are reclaimed in full (the paper's §5.2 GC claim).
        self.live
            .iter()
            .any(|&s| self.is_ancestor_or_self(node.created, s))
    }
}

impl Proxy {
    /// Raises the GC watermark: snapshots with id below `lowest` may no
    /// longer be queried and their exclusive nodes become reclaimable.
    pub fn set_watermark(&mut self, tree: u32, lowest: SnapshotId) -> Result<(), Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = *mc.layout(tree);
        loop {
            let mut tx = DynTx::new(&sin);
            let raw = match tx.read_repl(layout.global(), self.home) {
                Ok(r) => r,
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            let mut g = GlobalVal::decode(&raw).expect("global header corrupt");
            g.lowest = g.lowest.max(lowest);
            tx.write_repl(layout.global(), g.encode());
            match tx.commit() {
                Ok(_) => return Ok(()),
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            }
        }
    }

    /// Marks a snapshot deleted (branch deletion, §5.2). Its exclusive
    /// nodes — including discretionary copies made for it — become
    /// reclaimable by the next sweep. The mainline tip cannot be deleted.
    pub fn delete_snapshot(&mut self, tree: u32, sid: SnapshotId) -> Result<(), Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = *mc.layout(tree);
        let repl = layout
            .catalog_entry(sid)
            .ok_or(Error::NoSuchSnapshot(sid))?;
        loop {
            let mut tx = DynTx::new(&sin);
            let traw = match tx.read_repl(layout.tip(), self.home) {
                Ok(r) => r,
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            let tip = crate::catalog::TipVal::decode(&traw).expect("tip corrupt");
            if tip.sid == sid {
                return Err(Error::SnapshotReadOnly(sid));
            }
            let raw = match tx.read_repl(repl, self.home) {
                Ok(r) => r,
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            let mut entry =
                crate::catalog::CatEntry::decode(&raw).ok_or(Error::NoSuchSnapshot(sid))?;
            entry.deleted = true;
            tx.write_repl(repl, entry.encode());
            match tx.commit() {
                Ok(_) => {
                    self.cat_cache.remove(&(tree, sid));
                    return Ok(());
                }
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            }
        }
    }

    fn liveness_ctx(&mut self, tree: u32) -> Result<LivenessCtx, Error> {
        let mc = self.mc.clone();
        let layout = *mc.layout(tree);
        // Watermark + snapshot count from the global header (raw read).
        let graw = mc
            .sinfonia
            .node(self.home)
            .raw_read(layout.global().at(self.home).off, 64)
            .map_err(|u| Error::Unavailable(u.0))?;
        let g = GlobalVal::decode(&decode_obj(&graw).data).expect("global header corrupt");

        let mut live = Vec::new();
        let mut parents = HashMap::new();
        let mut roots = HashMap::new();
        for sid in 0..g.next_sid {
            if let Some((_, e)) = fetch_cat_raw(&mc, tree, sid, self.home)? {
                parents.insert(sid, e.parent);
                roots.insert(e.root, sid);
                if !e.deleted && sid >= g.lowest {
                    live.push(sid);
                }
            }
        }
        Ok(LivenessCtx {
            live,
            parents,
            roots,
            linear: mc.cfg.version_mode == VersionMode::Linear,
            lowest: g.lowest,
        })
    }

    /// One full GC sweep over every memnode of `tree`.
    pub fn gc_sweep(&mut self, tree: u32) -> Result<SweepStats, Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = *mc.layout(tree);
        let ctx = self.liveness_ctx(tree)?;
        let mut stats = SweepStats::default();

        for mem in sin.memnode_ids() {
            // Unsynchronized candidate scan.
            let mut candidates: Vec<u32> = Vec::new();
            crate::stats::scan_slots(&sin, &layout, mem, &mut |slot, val| {
                stats.scanned += 1;
                if let Ok(node) = Node::decode(&val.data) {
                    if !ctx.node_live(NodePtr { mem, slot }, &node) {
                        candidates.push(slot);
                    }
                }
            })?;

            // Transactional confirm-and-free, in batches.
            let seg_cap = crate::alloc::FreeSegment::capacity(layout.params.node_payload);
            for batch in candidates.chunks(seg_cap.clamp(1, 64)) {
                let (freed, skipped) = self.confirm_and_free(&ctx, tree, mem, batch)?;
                stats.freed += freed;
                stats.skipped += skipped;
            }
        }
        Ok(stats)
    }

    fn confirm_and_free(
        &mut self,
        ctx: &LivenessCtx,
        tree: u32,
        mem: MemNodeId,
        batch: &[u32],
    ) -> Result<(u64, u64), Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = *mc.layout(tree);
        loop {
            let mut tx = DynTx::new(&sin);
            let state_obj = layout.alloc_state(mem);
            let state = match tx.read(state_obj) {
                Ok(r) => AllocState::decode(&r),
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            // Re-confirm each candidate under validation.
            let mut confirmed: Vec<u32> = Vec::new();
            let mut skipped = 0u64;
            for &slot in batch {
                let ptr = NodePtr { mem, slot };
                let raw = match tx.read(layout.node_obj(ptr)) {
                    Ok(r) => r,
                    Err(TxError::Validation | TxError::NoReadyReplica) => {
                        skipped += 1;
                        continue;
                    }
                    Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                    Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
                };
                match Node::decode(&raw) {
                    Ok(node) if !ctx.node_live(ptr, &node) => confirmed.push(slot),
                    _ => skipped += 1,
                }
            }
            if confirmed.is_empty() {
                return Ok((0, skipped));
            }
            let new_state = push_free_segment(&mut tx, &layout, mem, &state, &confirmed);
            tx.write(state_obj, new_state.encode());
            match tx.commit() {
                Ok(_) => {
                    for &slot in &confirmed {
                        self.ncache.invalidate(tree, NodePtr { mem, slot });
                    }
                    return Ok((confirmed.len() as u64, skipped));
                }
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            }
        }
    }
}
