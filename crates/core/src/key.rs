//! Keys, values, and fence keys.
//!
//! Minuet exposes a byte-string ordered key-value interface. Every B-tree
//! node carries **two fence keys** (§3) delimiting the key range the node is
//! responsible for, whether or not those keys are present: `[low, high)`.
//! Fences are what make dirty traversals safe — a traversal that wanders
//! off the correct path is detected because the search key falls outside
//! the visited node's fences.

use std::cmp::Ordering;
use std::fmt;

/// A key: an arbitrary byte string ordered lexicographically.
pub type Key = Vec<u8>;

/// A value: an arbitrary byte string.
pub type Value = Vec<u8>;

/// A fence: either an actual key or an infinity sentinel.
///
/// The root node's fences are `(NegInf, PosInf)`; splits introduce finite
/// fences.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Fence {
    /// Below every key.
    NegInf,
    /// An actual key bound.
    Key(Key),
    /// Above every key.
    PosInf,
}

impl Fence {
    /// True if `key` is at or above this fence (used for low fences).
    pub fn le_key(&self, key: &[u8]) -> bool {
        match self {
            Fence::NegInf => true,
            Fence::Key(k) => k.as_slice() <= key,
            Fence::PosInf => false,
        }
    }

    /// True if `key` is strictly below this fence (used for high fences).
    pub fn gt_key(&self, key: &[u8]) -> bool {
        match self {
            Fence::NegInf => false,
            Fence::Key(k) => k.as_slice() > key,
            Fence::PosInf => true,
        }
    }

    /// Returns the finite key, if any.
    pub fn as_key(&self) -> Option<&Key> {
        match self {
            Fence::Key(k) => Some(k),
            _ => None,
        }
    }
}

impl PartialOrd for Fence {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fence {
    fn cmp(&self, other: &Self) -> Ordering {
        use Fence::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Key(a), Key(b)) => a.cmp(b),
        }
    }
}

impl fmt::Debug for Fence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fence::NegInf => write!(f, "-inf"),
            Fence::PosInf => write!(f, "+inf"),
            Fence::Key(k) => write!(f, "{:?}", String::from_utf8_lossy(k)),
        }
    }
}

/// True if `key` lies within `[low, high)`.
pub fn in_range(low: &Fence, high: &Fence, key: &[u8]) -> bool {
    low.le_key(key) && high.gt_key(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_ordering() {
        assert!(Fence::NegInf < Fence::Key(vec![]));
        assert!(Fence::Key(vec![0xff]) < Fence::PosInf);
        assert!(Fence::Key(b"a".to_vec()) < Fence::Key(b"b".to_vec()));
        assert_eq!(Fence::NegInf, Fence::NegInf);
    }

    #[test]
    fn in_range_boundaries() {
        let low = Fence::Key(b"b".to_vec());
        let high = Fence::Key(b"d".to_vec());
        assert!(!in_range(&low, &high, b"a"));
        assert!(in_range(&low, &high, b"b")); // inclusive low
        assert!(in_range(&low, &high, b"c"));
        assert!(!in_range(&low, &high, b"d")); // exclusive high
        assert!(in_range(&Fence::NegInf, &Fence::PosInf, b"anything"));
    }

    #[test]
    fn empty_key_vs_neginf() {
        // The empty key is a real key, distinct from -inf.
        assert!(in_range(&Fence::NegInf, &Fence::PosInf, b""));
        assert!(!in_range(&Fence::Key(vec![0]), &Fence::PosInf, b""));
    }
}
