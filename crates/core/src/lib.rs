//! # minuet-core
//!
//! **Minuet**: a scalable distributed multiversion B-tree — a from-scratch
//! reproduction of Sowell, Golab & Shah (PVLDB 5(9), 2012).
//!
//! Minuet is a main-memory, distributed B-tree supporting:
//!
//! * strictly-serializable transactional key-value operations (get / put /
//!   remove / multi-key transactions across multiple trees),
//! * **dirty traversals** (§3): internal nodes are read without validation,
//!   guarded by fence keys and version tags, so only leaves validate —
//!   removing the replicated sequence-number table of the prior art,
//! * **copy-on-write snapshots** (§4) for in-situ analytics: long scans run
//!   against immutable snapshots and never abort,
//! * a **snapshot creation service** with *borrowed snapshots* (§4.3) and a
//!   k-staleness policy (§6.3),
//! * **writable clones / branching versions** (§5) with bounded descendant
//!   sets and discretionary copy-on-write,
//! * watermark + branch-deletion **garbage collection** (§4.4).
//!
//! ## Quickstart
//!
//! ```
//! use minuet_core::{MinuetCluster, TreeConfig};
//!
//! // 4 memnodes, 1 tree.
//! let mc = MinuetCluster::new(4, 1, TreeConfig::default());
//! let mut proxy = mc.proxy();
//!
//! proxy.put(0, b"k1".to_vec(), b"v1".to_vec()).unwrap();
//! assert_eq!(proxy.get(0, b"k1").unwrap(), Some(b"v1".to_vec()));
//!
//! // Freeze a snapshot, keep writing, scan the frozen state.
//! let snap = proxy.create_snapshot(0).unwrap();
//! proxy.put(0, b"k2".to_vec(), b"v2".to_vec()).unwrap();
//! let frozen = proxy.scan_at(0, snap.frozen_sid, b"", 100).unwrap();
//! assert_eq!(frozen.len(), 1);
//! ```

pub mod alloc;
pub mod batch;
pub mod cache;
pub mod catalog;
pub mod clone;
pub mod error;
pub mod gc;
pub mod key;
pub mod layout;
pub mod migrate;
pub mod node;
pub mod ops;
pub mod proxy;
pub mod scan;
pub mod scs;
pub mod snapshot;
pub mod stats;
pub mod traverse;
pub mod tree;

pub use catalog::{CatEntry, GlobalVal, TipVal};
pub use error::{Error, RetryCause};
pub use gc::SweepStats;
pub use key::{Fence, Key, Value};
pub use layout::{Layout, LayoutParams};
pub use migrate::{RebalanceReport, Rebalancer};
pub use node::{Node, NodeBody, NodePtr, SnapshotId};
pub use proxy::{op_tag, op_tag_name, Proxy, Txn, TxnError};
pub use scs::SnapshotService;
pub use snapshot::SnapshotInfo;
pub use stats::{occupancy, MemOccupancy, MigrationCounters, MigrationSnapshot, ProxyStats};
pub use tree::{ConcurrencyMode, MinuetCluster, TreeConfig, VersionMode};

impl MinuetCluster {
    /// The snapshot creation service of `tree` (§4.3).
    pub fn scs(&self, tree: u32) -> &SnapshotService {
        &self.shared(tree).scs
    }
}
