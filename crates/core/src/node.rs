//! B-tree node representation and its on-memnode binary format.
//!
//! Nodes are stored as dynamic-transaction objects in the Sinfonia address
//! space. Each node carries (per §3–§5 of the paper):
//!
//! * its **height** (0 = leaf),
//! * the **snapshot id at which it was created** (by split or copy-on-write),
//! * its **descendant set**: the snapshot ids it has been copied to — a
//!   single id in linear-snapshot mode (§4.2's "copied-to" tag), up to β
//!   ids with branching versions (§5.2),
//! * **two fence keys** delimiting the key range it is responsible for,
//! * entries: separator keys + child pointers (internal) or key/value pairs
//!   (leaf).

use crate::error::CorruptNode;
use crate::key::{Fence, Key, Value};
use minuet_sinfonia::MemNodeId;
use std::fmt;

/// Snapshot identifier. Snapshot 0 is the initial (tip) version of a tree.
pub type SnapshotId = u64;

/// One descendant-set entry: a snapshot this node was copied to, plus the
/// address of that copy. With branching versions (§5.2), traversals follow
/// these entries like a chain of forwarding pointers: a reader at snapshot
/// `t` that lands on a node copied at an ancestor of `t` redirects to the
/// copy instead of aborting — this is what makes discretionary copies
/// reachable from *every* descendant of the copy's snapshot without
/// rewriting read-only trees.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DescEntry {
    /// Snapshot the copy was made for.
    pub sid: SnapshotId,
    /// Location of the copy (for a copy that split immediately, the left
    /// half; fence checks reroute the right half via a fresh traversal).
    pub ptr: NodePtr,
}

/// Pointer to a B-tree node: a memnode plus a slot index within that
/// memnode's node region (the slot maps to a byte offset via
/// [`crate::layout::Layout`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodePtr {
    /// Memnode storing the node.
    pub mem: MemNodeId,
    /// Slot index within the node region.
    pub slot: u32,
}

impl fmt::Debug for NodePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.mem, self.slot)
    }
}

/// Body of a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeBody {
    /// Internal node: `kids.len() == seps.len() + 1`; child `i` covers
    /// `[seps[i-1], seps[i])` within the node's fences.
    Internal {
        /// Separator keys.
        seps: Vec<Key>,
        /// Child pointers.
        kids: Vec<NodePtr>,
    },
    /// Leaf node: sorted key/value pairs.
    Leaf {
        /// Sorted entries.
        entries: Vec<(Key, Value)>,
    },
}

/// A decoded B-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Height above the leaves (0 = leaf).
    pub height: u8,
    /// Snapshot id at which this physical node was created.
    pub created: SnapshotId,
    /// Descendant set: the copies made of this node (bounded by β with
    /// branching versions; at most one entry with linear snapshots).
    pub desc: Vec<DescEntry>,
    /// Low fence (inclusive).
    pub low: Fence,
    /// High fence (exclusive).
    pub high: Fence,
    /// Entries.
    pub body: NodeBody,
}

const NODE_MAGIC: u8 = 0xB7;

impl Node {
    /// Creates an empty leaf covering the full key space (a fresh tree's
    /// root).
    pub fn empty_root(created: SnapshotId) -> Node {
        Node {
            height: 0,
            created,
            desc: Vec::new(),
            low: Fence::NegInf,
            high: Fence::PosInf,
            body: NodeBody::Leaf {
                entries: Vec::new(),
            },
        }
    }

    /// True if this is an internal node.
    pub fn is_internal(&self) -> bool {
        matches!(self.body, NodeBody::Internal { .. })
    }

    /// Number of entries (children or key/value pairs).
    pub fn len(&self) -> usize {
        match &self.body {
            NodeBody::Internal { kids, .. } => kids.len(),
            NodeBody::Leaf { entries } => entries.len(),
        }
    }

    /// True if the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Child responsible for `key`. Caller must have checked the fences.
    pub fn child_for(&self, key: &[u8]) -> NodePtr {
        match &self.body {
            NodeBody::Internal { seps, kids } => {
                let idx = seps.partition_point(|s| s.as_slice() <= key);
                kids[idx]
            }
            NodeBody::Leaf { .. } => panic!("child_for on a leaf"),
        }
    }

    /// Looks up `key` in a leaf.
    pub fn leaf_get(&self, key: &[u8]) -> Option<&Value> {
        match &self.body {
            NodeBody::Leaf { entries } => entries
                .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                .ok()
                .map(|i| &entries[i].1),
            NodeBody::Internal { .. } => panic!("leaf_get on an internal node"),
        }
    }

    /// Inserts or replaces `key` in a leaf; returns the previous value.
    pub fn leaf_put(&mut self, key: Key, value: Value) -> Option<Value> {
        match &mut self.body {
            NodeBody::Leaf { entries } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(&key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value)),
                    Err(i) => {
                        entries.insert(i, (key, value));
                        None
                    }
                }
            }
            NodeBody::Internal { .. } => panic!("leaf_put on an internal node"),
        }
    }

    /// Removes `key` from a leaf; returns the previous value.
    pub fn leaf_remove(&mut self, key: &[u8]) -> Option<Value> {
        match &mut self.body {
            NodeBody::Leaf { entries } => entries
                .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                .ok()
                .map(|i| entries.remove(i).1),
            NodeBody::Internal { .. } => panic!("leaf_remove on an internal node"),
        }
    }

    /// Replaces the child pointer `old` with `new`; returns false if `old`
    /// is not present (signals a stale parent image — caller aborts).
    pub fn replace_child(&mut self, old: NodePtr, new: NodePtr) -> bool {
        match &mut self.body {
            NodeBody::Internal { kids, .. } => {
                for k in kids.iter_mut() {
                    if *k == old {
                        *k = new;
                        return true;
                    }
                }
                false
            }
            NodeBody::Leaf { .. } => false,
        }
    }

    /// Inserts a new child: a separator `sep` and the pointer to the child
    /// covering `[sep, next sep)`. Used after a child split.
    pub fn insert_child(&mut self, sep: Key, ptr: NodePtr) {
        match &mut self.body {
            NodeBody::Internal { seps, kids } => {
                let idx = seps.partition_point(|s| s.as_slice() <= sep.as_slice());
                seps.insert(idx, sep);
                kids.insert(idx + 1, ptr);
            }
            NodeBody::Leaf { .. } => panic!("insert_child on a leaf"),
        }
    }

    /// Encoded payload size in bytes.
    pub fn encoded_size(&self) -> usize {
        let fence = |f: &Fence| 1 + f.as_key().map_or(0, |k| 2 + k.len());
        let mut n = 1 + 1 + 8 + 1 + 14 * self.desc.len() + fence(&self.low) + fence(&self.high) + 2;
        match &self.body {
            NodeBody::Internal { seps, kids } => {
                n += seps.iter().map(|s| 2 + s.len()).sum::<usize>();
                n += kids.len() * 6;
            }
            NodeBody::Leaf { entries } => {
                n += entries
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.len())
                    .sum::<usize>();
            }
        }
        n
    }

    /// True if the node no longer fits in a slot (or exceeds the
    /// configured entry cap) and must split.
    pub fn overflows(&self, payload_cap: usize, max_entries: usize) -> bool {
        self.len() > max_entries || self.encoded_size() > payload_cap
    }

    /// Splits the node in half. Returns `(left, right)`; both inherit
    /// `created` and get empty descendant sets (they are fresh physical
    /// nodes). The separator is `right.low`'s key.
    ///
    /// Panics if the node has fewer than 2 entries.
    pub fn split(self) -> (Node, Key, Node) {
        match self.body {
            NodeBody::Leaf { entries } => {
                assert!(entries.len() >= 2, "cannot split leaf with <2 entries");
                let mid = entries.len() / 2;
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let sep = right_entries[0].0.clone();
                let left = Node {
                    height: 0,
                    created: self.created,
                    desc: Vec::new(),
                    low: self.low,
                    high: Fence::Key(sep.clone()),
                    body: NodeBody::Leaf {
                        entries: left_entries,
                    },
                };
                let right = Node {
                    height: 0,
                    created: self.created,
                    desc: Vec::new(),
                    low: Fence::Key(sep.clone()),
                    high: self.high,
                    body: NodeBody::Leaf {
                        entries: right_entries,
                    },
                };
                (left, sep, right)
            }
            NodeBody::Internal { seps, kids } => {
                assert!(kids.len() >= 2, "cannot split internal with <2 kids");
                // Promote the middle separator.
                let m = seps.len() / 2;
                let sep = seps[m].clone();
                let left = Node {
                    height: self.height,
                    created: self.created,
                    desc: Vec::new(),
                    low: self.low,
                    high: Fence::Key(sep.clone()),
                    body: NodeBody::Internal {
                        seps: seps[..m].to_vec(),
                        kids: kids[..m + 1].to_vec(),
                    },
                };
                let right = Node {
                    height: self.height,
                    created: self.created,
                    desc: Vec::new(),
                    low: Fence::Key(sep.clone()),
                    high: self.high,
                    body: NodeBody::Internal {
                        seps: seps[m + 1..].to_vec(),
                        kids: kids[m + 1..].to_vec(),
                    },
                };
                (left, sep, right)
            }
        }
    }

    /// Serializes the node into an object payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size());
        out.push(NODE_MAGIC);
        out.push(self.height);
        out.extend_from_slice(&self.created.to_le_bytes());
        debug_assert!(self.desc.len() <= u8::MAX as usize);
        out.push(self.desc.len() as u8);
        for d in &self.desc {
            out.extend_from_slice(&d.sid.to_le_bytes());
            out.extend_from_slice(&d.ptr.mem.0.to_le_bytes());
            out.extend_from_slice(&d.ptr.slot.to_le_bytes());
        }
        encode_fence(&mut out, &self.low);
        encode_fence(&mut out, &self.high);
        match &self.body {
            NodeBody::Internal { seps, kids } => {
                debug_assert_eq!(kids.len(), seps.len() + 1);
                out.extend_from_slice(&(kids.len() as u16).to_le_bytes());
                for s in seps {
                    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                    out.extend_from_slice(s);
                }
                for k in kids {
                    out.extend_from_slice(&k.mem.0.to_le_bytes());
                    out.extend_from_slice(&k.slot.to_le_bytes());
                }
            }
            NodeBody::Leaf { entries } => {
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(&(v.len() as u16).to_le_bytes());
                    out.extend_from_slice(v);
                }
            }
        }
        debug_assert_eq!(out.len(), self.encoded_size());
        out
    }

    /// Deserializes a node, validating structure defensively (raw GC scans
    /// may race with writers; a torn or freed image must decode to an
    /// error, never panic).
    pub fn decode(raw: &[u8]) -> Result<Node, CorruptNode> {
        let mut c = Cursor { raw, pos: 0 };
        let magic = c.u8()?;
        if magic != NODE_MAGIC {
            return Err(CorruptNode::BadMagic(magic));
        }
        let height = c.u8()?;
        let created = c.u64()?;
        let ndesc = c.u8()? as usize;
        let mut desc = Vec::with_capacity(ndesc);
        for _ in 0..ndesc {
            let sid = c.u64()?;
            let mem = c.u16()?;
            let slot = c.u32()?;
            desc.push(DescEntry {
                sid,
                ptr: NodePtr {
                    mem: MemNodeId(mem),
                    slot,
                },
            });
        }
        let low = decode_fence(&mut c)?;
        let high = decode_fence(&mut c)?;
        let count = c.u16()? as usize;
        let body = if height > 0 {
            if count == 0 {
                return Err(CorruptNode::Truncated);
            }
            let mut seps = Vec::with_capacity(count - 1);
            for _ in 0..count - 1 {
                seps.push(c.bytes_u16()?.to_vec());
            }
            let mut kids = Vec::with_capacity(count);
            for _ in 0..count {
                let mem = c.u16()?;
                let slot = c.u32()?;
                kids.push(NodePtr {
                    mem: MemNodeId(mem),
                    slot,
                });
            }
            NodeBody::Internal { seps, kids }
        } else {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let k = c.bytes_u16()?.to_vec();
                let v = c.bytes_u16()?.to_vec();
                entries.push((k, v));
            }
            NodeBody::Leaf { entries }
        };
        Ok(Node {
            height,
            created,
            desc,
            low,
            high,
            body,
        })
    }
}

fn encode_fence(out: &mut Vec<u8>, f: &Fence) {
    match f {
        Fence::NegInf => out.push(0),
        Fence::Key(k) => {
            out.push(1);
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(k);
        }
        Fence::PosInf => out.push(2),
    }
}

fn decode_fence(c: &mut Cursor<'_>) -> Result<Fence, CorruptNode> {
    match c.u8()? {
        0 => Ok(Fence::NegInf),
        1 => Ok(Fence::Key(c.bytes_u16()?.to_vec())),
        2 => Ok(Fence::PosInf),
        t => Err(CorruptNode::BadFenceTag(t)),
    }
}

struct Cursor<'a> {
    raw: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CorruptNode> {
        if self.pos + n > self.raw.len() {
            return Err(CorruptNode::Truncated);
        }
        let s = &self.raw[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CorruptNode> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CorruptNode> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CorruptNode> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CorruptNode> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes_u16(&mut self) -> Result<&'a [u8], CorruptNode> {
        let n = self.u16()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(mem: u16, slot: u32) -> NodePtr {
        NodePtr {
            mem: MemNodeId(mem),
            slot,
        }
    }

    fn leaf(entries: Vec<(&str, &str)>) -> Node {
        Node {
            height: 0,
            created: 3,
            desc: vec![DescEntry {
                sid: 5,
                ptr: ptr(1, 9),
            }],
            low: Fence::NegInf,
            high: Fence::Key(b"zz".to_vec()),
            body: NodeBody::Leaf {
                entries: entries
                    .into_iter()
                    .map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec()))
                    .collect(),
            },
        }
    }

    #[test]
    fn leaf_encode_decode_roundtrip() {
        let n = leaf(vec![("a", "1"), ("b", "2"), ("c", "3")]);
        let raw = n.encode();
        assert_eq!(raw.len(), n.encoded_size());
        assert_eq!(Node::decode(&raw).unwrap(), n);
    }

    #[test]
    fn internal_encode_decode_roundtrip() {
        let n = Node {
            height: 2,
            created: 7,
            desc: vec![],
            low: Fence::Key(b"d".to_vec()),
            high: Fence::PosInf,
            body: NodeBody::Internal {
                seps: vec![b"g".to_vec(), b"m".to_vec()],
                kids: vec![ptr(0, 1), ptr(1, 2), ptr(2, 3)],
            },
        };
        let raw = n.encode();
        assert_eq!(raw.len(), n.encoded_size());
        assert_eq!(Node::decode(&raw).unwrap(), n);
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[0u8; 40]).is_err());
        let mut raw = leaf(vec![("a", "1")]).encode();
        raw.truncate(raw.len() - 1);
        assert!(Node::decode(&raw).is_err());
    }

    #[test]
    fn child_routing() {
        let n = Node {
            height: 1,
            created: 0,
            desc: vec![],
            low: Fence::NegInf,
            high: Fence::PosInf,
            body: NodeBody::Internal {
                seps: vec![b"g".to_vec(), b"m".to_vec()],
                kids: vec![ptr(0, 1), ptr(0, 2), ptr(0, 3)],
            },
        };
        assert_eq!(n.child_for(b"a"), ptr(0, 1));
        assert_eq!(n.child_for(b"g"), ptr(0, 2)); // separator belongs right
        assert_eq!(n.child_for(b"l"), ptr(0, 2));
        assert_eq!(n.child_for(b"m"), ptr(0, 3));
        assert_eq!(n.child_for(b"z"), ptr(0, 3));
    }

    #[test]
    fn leaf_put_get_remove() {
        let mut n = leaf(vec![("b", "2")]);
        assert_eq!(n.leaf_put(b"a".to_vec(), b"1".to_vec()), None);
        assert_eq!(
            n.leaf_put(b"a".to_vec(), b"x".to_vec()),
            Some(b"1".to_vec())
        );
        assert_eq!(n.leaf_get(b"a"), Some(&b"x".to_vec()));
        assert_eq!(n.leaf_remove(b"a"), Some(b"x".to_vec()));
        assert_eq!(n.leaf_get(b"a"), None);
        assert_eq!(n.leaf_remove(b"nope"), None);
    }

    #[test]
    fn leaf_split_covers_range() {
        let n = leaf(vec![("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")]);
        let high = n.high.clone();
        let low = n.low.clone();
        let (l, sep, r) = n.split();
        assert_eq!(sep, b"c".to_vec());
        assert_eq!(l.low, low);
        assert_eq!(l.high, Fence::Key(sep.clone()));
        assert_eq!(r.low, Fence::Key(sep));
        assert_eq!(r.high, high);
        assert_eq!(l.len() + r.len(), 4);
        assert!(l.desc.is_empty() && r.desc.is_empty());
    }

    #[test]
    fn internal_split_promotes_separator() {
        let n = Node {
            height: 1,
            created: 0,
            desc: vec![],
            low: Fence::NegInf,
            high: Fence::PosInf,
            body: NodeBody::Internal {
                seps: vec![b"b".to_vec(), b"d".to_vec(), b"f".to_vec()],
                kids: vec![ptr(0, 0), ptr(0, 1), ptr(0, 2), ptr(0, 3)],
            },
        };
        let (l, sep, r) = n.split();
        assert_eq!(sep, b"d".to_vec());
        // The promoted separator appears in neither half.
        match (&l.body, &r.body) {
            (
                NodeBody::Internal { seps: ls, kids: lk },
                NodeBody::Internal { seps: rs, kids: rk },
            ) => {
                assert_eq!(ls, &vec![b"b".to_vec()]);
                assert_eq!(rs, &vec![b"f".to_vec()]);
                assert_eq!(lk.len(), 2);
                assert_eq!(rk.len(), 2);
            }
            _ => panic!("expected internal nodes"),
        }
    }

    #[test]
    fn insert_child_keeps_order() {
        let mut n = Node {
            height: 1,
            created: 0,
            desc: vec![],
            low: Fence::NegInf,
            high: Fence::PosInf,
            body: NodeBody::Internal {
                seps: vec![b"m".to_vec()],
                kids: vec![ptr(0, 0), ptr(0, 1)],
            },
        };
        n.insert_child(b"f".to_vec(), ptr(0, 9));
        match &n.body {
            NodeBody::Internal { seps, kids } => {
                assert_eq!(seps, &vec![b"f".to_vec(), b"m".to_vec()]);
                assert_eq!(kids, &vec![ptr(0, 0), ptr(0, 9), ptr(0, 1)]);
            }
            _ => unreachable!(),
        }
        assert_eq!(n.child_for(b"a"), ptr(0, 0));
        assert_eq!(n.child_for(b"g"), ptr(0, 9));
        assert_eq!(n.child_for(b"x"), ptr(0, 1));
    }

    #[test]
    fn replace_child_detects_missing() {
        let mut n = Node {
            height: 1,
            created: 0,
            desc: vec![],
            low: Fence::NegInf,
            high: Fence::PosInf,
            body: NodeBody::Internal {
                seps: vec![],
                kids: vec![ptr(0, 0)],
            },
        };
        assert!(n.replace_child(ptr(0, 0), ptr(1, 5)));
        assert!(!n.replace_child(ptr(0, 0), ptr(1, 6)));
        assert_eq!(n.child_for(b"k"), ptr(1, 5));
    }

    #[test]
    fn overflow_thresholds() {
        let n = leaf(vec![("a", "1"), ("b", "2")]);
        assert!(!n.overflows(4096, 10));
        assert!(n.overflows(4096, 1)); // entry cap
        assert!(n.overflows(10, 10)); // size cap
    }
}
