//! Batched multi-key operations and bottom-up bulk loading.
//!
//! Minuet's cost model is network round trips: a single `put` pays one
//! round trip to fetch its leaf and one to commit, so under injected
//! latency a client is bounded by one operation in flight. This module
//! amortizes those round trips across K independent operations:
//!
//! 1. **Shared routing.** The sorted keys are routed through the proxy's
//!    cached internal nodes (routing traversals, ~zero round trips once
//!    the cache is warm) and grouped into *per-leaf groups* by
//!    the leaf pointers their parents name. Consecutive sorted keys reuse
//!    the previous route while they stay inside the parent's fence keys.
//! 2. **Grouped leaf fetches.** All group leaves on the same memnode are
//!    fetched by a *single* minitransaction that also compares the tip's
//!    sequence number — the batched analogue of piggy-backed validation —
//!    executed through [`SinfoniaCluster::exec_many`], so L leaves on M
//!    memnodes cost M round trips instead of L.
//! 3. **Pipelined commits.** Each mutating group stages its leaf update
//!    (including any copy-on-write or split consequences) in its own
//!    dynamic transaction, and all group commits execute as one
//!    [`minuet_dyntx::commit_many`] batch — again one round trip per
//!    participant memnode for the common single-memnode leaf commits.
//!
//! **Fallback rules** (the invariant that keeps the batch path exactly as
//! safe as the per-key path): a batch member is served by the fast path
//! only if its leaf decodes, covers the key per its fence keys, and passes
//! the version-tag check; any member whose group misses those checks, or
//! whose group commit fails validation against a concurrent writer, is
//! retried through the ordinary single-key operations (`get`/`put`/
//! `remove`), which carry their own optimistic retry loops. A stale tip
//! observation retries the whole batch (a bounded number of times)
//! before degrading to per-key execution. The result is observably
//! equivalent to applying the same operations one at a time in input
//! order — `tests/prop_batch.rs` checks exactly that, including under
//! concurrent writers.
//!
//! Batches are **not transactions**: members commit independently, and
//! concurrent writers may interleave between members (just as they can
//! between loose single ops). Use [`Proxy::txn`] for multi-key atomicity.
//!
//! [`SinfoniaCluster::exec_many`]: minuet_sinfonia::SinfoniaCluster::exec_many

use crate::error::{Attempt, Error, RetryCause};
use crate::key::{in_range, Fence, Key, Value};
use crate::node::{Node, NodeBody, NodePtr};
use crate::proxy::{backoff, op_tag, OpTarget, Proxy, RETRY_TAG_BATCH_FALLBACK};
use crate::traverse::{LeafAccess, OpCtx, PathEntry, VersionCheck};
use crate::tree::ConcurrencyMode;
use minuet_dyntx::{commit_many, DynTx, SeqNo, StagedCommit, TxError, TxKey};
use minuet_obs::{event, SpanKind};
use minuet_sinfonia::{MemNodeId, Minitransaction, Outcome, SinfoniaError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Whole-batch retries (stale tip / stale route) before the remaining
/// members degrade to the per-key path, which has its own retry budget.
const BATCH_ATTEMPTS: usize = 16;

/// The operation a batch applies to every member key.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BatchKind {
    Get,
    Put,
    Remove,
}

/// One per-leaf group: the cached internal route that named the leaf and
/// the batch members (indices into the item vector) it serves.
struct LeafGroup {
    route: Vec<PathEntry>,
    members: Vec<usize>,
}

/// One memnode's fetch/validate plan: the leaf ptrs its minitransaction
/// reads in full, and `(compare index, ptr)` for the cached leaves it only
/// revalidates (compare index 0 is always the tip).
type FetchPlan = (Vec<NodePtr>, Vec<(usize, NodePtr)>);

/// A group leaf as established by the batched fetch/validate round trip:
/// either freshly read (`raw` holds the image for read-set pinning) or a
/// cached image whose seqno the fetch minitransaction revalidated
/// (`raw == None`; mutations pin the version only).
struct LeafImage {
    seqno: SeqNo,
    node: Arc<Node>,
    raw: Option<minuet_sinfonia::Bytes>,
}

/// Disposition of one batch attempt.
enum BatchOutcome {
    /// The tip or a route went stale mid-attempt: retry everything still
    /// pending.
    Retry,
    /// The attempt ran to completion. `requeue` holds members whose group
    /// commit lost a validation race — worth another *batched* attempt
    /// with a fresh leaf fetch; `fallback` holds members the fast path
    /// cannot serve (stale routes, redirects, overflow spill), which go to
    /// the per-key path.
    Served {
        fallback: Vec<usize>,
        requeue: Vec<usize>,
    },
}

impl Proxy {
    /// Point-looks-up many keys at the mainline tip with one shared
    /// traversal per leaf and one batched fetch round trip per memnode.
    /// Results are in input order. Each lookup is individually strictly
    /// serializable (its leaf read and tip validation happen in one atomic
    /// minitransaction); the batch as a whole is not a transaction.
    ///
    /// ```
    /// # use minuet_core::{MinuetCluster, TreeConfig};
    /// let mc = MinuetCluster::new(2, 1, TreeConfig::default());
    /// let mut p = mc.proxy();
    /// p.multi_put(0, &[(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), b"2".to_vec())])
    ///     .unwrap();
    /// let got = p.multi_get(0, &[b"a".to_vec(), b"missing".to_vec()]).unwrap();
    /// assert_eq!(got, vec![Some(b"1".to_vec()), None]);
    /// ```
    pub fn multi_get(&mut self, tree: u32, keys: &[Key]) -> Result<Vec<Option<Value>>, Error> {
        let items: Vec<(Key, Option<Value>)> = keys.iter().map(|k| (k.clone(), None)).collect();
        self.multi_op(tree, BatchKind::Get, items)
    }

    /// Inserts or updates many key/value pairs at the mainline tip,
    /// sharing traversals per leaf and pipelining the per-leaf commits
    /// into one round trip per memnode. Returns the previous value per
    /// pair, in input order, exactly as if the pairs had been `put` one at
    /// a time in input order (duplicate keys observe the batch's earlier
    /// writes). On conflict a pair falls back to the ordinary retrying
    /// [`Proxy::put`].
    ///
    /// ```
    /// # use minuet_core::{MinuetCluster, TreeConfig};
    /// let mc = MinuetCluster::new(2, 1, TreeConfig::default());
    /// let mut p = mc.proxy();
    /// let pairs: Vec<_> = (0..32u8).map(|i| (vec![i], vec![i])).collect();
    /// assert!(p.multi_put(0, &pairs).unwrap().iter().all(|old| old.is_none()));
    /// let gone = p.multi_remove(0, &[vec![7], vec![200]]).unwrap();
    /// assert_eq!(gone, vec![Some(vec![7]), None]);
    /// ```
    pub fn multi_put(
        &mut self,
        tree: u32,
        pairs: &[(Key, Value)],
    ) -> Result<Vec<Option<Value>>, Error> {
        let items: Vec<(Key, Option<Value>)> = pairs
            .iter()
            .map(|(k, v)| (k.clone(), Some(v.clone())))
            .collect();
        self.multi_op(tree, BatchKind::Put, items)
    }

    /// Removes many keys at the mainline tip (the batched analogue of
    /// [`Proxy::remove`]); returns the previous values in input order.
    pub fn multi_remove(&mut self, tree: u32, keys: &[Key]) -> Result<Vec<Option<Value>>, Error> {
        let items: Vec<(Key, Option<Value>)> = keys.iter().map(|k| (k.clone(), None)).collect();
        self.multi_op(tree, BatchKind::Remove, items)
    }

    /// Executes one key through the ordinary single-op path.
    fn op_one(
        &mut self,
        tree: u32,
        kind: BatchKind,
        key: &Key,
        value: Option<&Value>,
    ) -> Result<Option<Value>, Error> {
        match kind {
            BatchKind::Get => self.get(tree, key),
            BatchKind::Put => self.put(tree, key.clone(), value.expect("put value").clone()),
            BatchKind::Remove => self.remove(tree, key),
        }
    }

    fn multi_op(
        &mut self,
        tree: u32,
        kind: BatchKind,
        items: Vec<(Key, Option<Value>)>,
    ) -> Result<Vec<Option<Value>>, Error> {
        let _op = self.mc.sinfonia.obs().op(match kind {
            BatchKind::Get => op_tag::MULTI_GET,
            BatchKind::Put | BatchKind::Remove => op_tag::MULTI_PUT,
        });
        let n = items.len();
        let mut results: Vec<Option<Value>> = vec![None; n];
        if n == 0 {
            return Ok(results);
        }

        // The baseline FullValidation mode validates whole traversal paths
        // against its replicated seqno table; the batch planner does not
        // reproduce that protocol, so run the per-key path outright.
        let mut pending: Vec<usize> = if self.mc.cfg.mode == ConcurrencyMode::FullValidation {
            (0..n).collect()
        } else {
            // Sorted by key (stable, so duplicates keep input order) for
            // route reuse across consecutive keys.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| items[a].0.cmp(&items[b].0));
            let mut unserved: Vec<usize> = Vec::new();
            let mut attempts = 0usize;
            loop {
                match self.batch_attempt(tree, kind, &items, &order, &mut results)? {
                    BatchOutcome::Served { fallback, requeue } => {
                        unserved.extend(fallback);
                        order = requeue;
                        // Conflicted members re-batch against fresh leaf
                        // images; keep them key-sorted for route reuse.
                        order.sort_by(|&a, &b| items[a].0.cmp(&items[b].0).then(a.cmp(&b)));
                    }
                    BatchOutcome::Retry => {}
                }
                if order.is_empty() {
                    break unserved;
                }
                attempts += 1;
                if attempts >= BATCH_ATTEMPTS {
                    unserved.extend(order);
                    break unserved;
                }
                backoff(attempts);
            }
        };

        // Per-key fallback: the ordinary operations with their own
        // optimistic retry loops. Input order preserved for duplicates.
        pending.sort_unstable();
        self.stats.batch_fallbacks += pending.len() as u64;
        if !pending.is_empty() {
            event(SpanKind::Retry, RETRY_TAG_BATCH_FALLBACK);
        }
        for i in pending {
            let (key, value) = &items[i];
            results[i] = self.op_one(tree, kind, key, value.as_ref())?;
        }
        Ok(results)
    }

    /// One attempt at serving every `pending` member through the batched
    /// path. Fills `results` for the members it serves.
    fn batch_attempt(
        &mut self,
        tree: u32,
        kind: BatchKind,
        items: &[(Key, Option<Value>)],
        pending: &[usize],
        results: &mut [Option<Value>],
    ) -> Result<BatchOutcome, Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = *mc.layout(tree);

        // Routing transaction: only used for dirty-cached internal-node
        // fetches, never committed.
        let mut rtx = DynTx::with_piggyback(&sin, mc.cfg.piggyback);
        let ctx = match self.resolve(&mut rtx, tree, OpTarget::MainlineTip)? {
            Attempt::Done(c) => c,
            Attempt::Retry(c) => {
                self.note_retry(tree, c);
                return Ok(BatchOutcome::Retry);
            }
        };
        // The tip observation every group pins: the fetch minitransactions
        // compare it remotely, and every group commit validates it.
        let Some(&(tip_seq, tip_val)) = self.tip_cache.get(&tree) else {
            return Ok(BatchOutcome::Retry);
        };

        // ---- 1. Route the sorted keys into per-leaf groups. ----
        let mut groups: BTreeMap<NodePtr, LeafGroup> = BTreeMap::new();
        let mut route: Option<Vec<PathEntry>> = None;
        for &i in pending {
            let key = &items[i].0;
            // A route stays valid while the key sits inside its last
            // node's fences (that node is the height-1 parent, or the root
            // itself when the whole tree is a single leaf).
            let reusable = route.as_ref().is_some_and(|r| {
                let p = r.last().expect("route nonempty");
                in_range(&p.node.low, &p.node.high, key)
            });
            if !reusable {
                match self.traverse(&mut rtx, tree, &ctx, key, LeafAccess::Route, 1)? {
                    Attempt::Done(path) => route = Some(path),
                    Attempt::Retry(c) => {
                        self.note_retry(tree, c);
                        return Ok(BatchOutcome::Retry);
                    }
                }
            }
            let r = route.as_ref().expect("route set");
            let parent = r.last().expect("route nonempty");
            let (leaf_ptr, chain) = if parent.node.height == 0 {
                // Single-level tree: the root is the leaf; no internal
                // chain above it.
                (parent.ptr, &r[..0])
            } else {
                (parent.node.child_for(key), &r[..])
            };
            groups
                .entry(leaf_ptr)
                .or_insert_with(|| LeafGroup {
                    route: chain.to_vec(),
                    members: Vec::new(),
                })
                .members
                .push(i);
        }
        self.stats.batch_groups += groups.len() as u64;

        // ---- 2. Fetch or revalidate every group's leaf, one
        // minitransaction per memnode, each pinning the tip at the
        // observed seqno. A leaf still in the proxy's cache is not
        // re-shipped: the minitransaction only *compares* its seqno (the
        // validated-leaf-cache fast path), so a fully warm batched get
        // moves tens of bytes per memnode instead of full leaf images. ----
        let cache_leaves = mc.cfg.cache_leaves;
        let mut cached: BTreeMap<NodePtr, (SeqNo, Arc<Node>)> = BTreeMap::new();
        if cache_leaves {
            for &ptr in groups.keys() {
                if let Some((seqno, node)) = self.ncache.get(tree, ptr) {
                    if node.height == 0 {
                        cached.insert(ptr, (seqno, node));
                    }
                }
            }
        }
        let mut by_mem: BTreeMap<MemNodeId, Vec<NodePtr>> = BTreeMap::new();
        for &ptr in groups.keys() {
            by_mem.entry(ptr.mem).or_default().push(ptr);
        }
        // Per memnode: the minitransaction plus which ptr each compare
        // index validates (index 0 is the tip) and which ptrs are read.
        let mut plans: Vec<FetchPlan> = Vec::new();
        let mut ms: Vec<Minitransaction> = Vec::new();
        for (mem, ptrs) in &by_mem {
            let mut m = Minitransaction::new();
            m.compare(
                layout.tip().at(*mem).seqno_range(),
                tip_seq.to_le_bytes().to_vec(),
            );
            let mut read_ptrs = Vec::new();
            let mut compare_ptrs = Vec::new();
            for &ptr in ptrs {
                if let Some((seqno, _)) = cached.get(&ptr) {
                    let idx = m.compare(
                        layout.node_obj(ptr).seqno_range(),
                        seqno.to_le_bytes().to_vec(),
                    );
                    compare_ptrs.push((idx, ptr));
                } else {
                    m.read(layout.node_obj(ptr).full_range());
                    read_ptrs.push(ptr);
                }
            }
            plans.push((read_ptrs, compare_ptrs));
            ms.push(m);
        }
        let outcomes = match sin.exec_many(&ms) {
            Ok(o) => o,
            Err(SinfoniaError::Unavailable(mem)) => return Err(Error::Unavailable(mem)),
            Err(SinfoniaError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            Err(SinfoniaError::OutOfBounds { mem, detail }) => {
                panic!("batched leaf fetch out of bounds at {mem}: {detail}")
            }
        };
        let mut leaves: BTreeMap<NodePtr, LeafImage> = BTreeMap::new();
        let mut stale_leaf = false;
        for ((read_ptrs, compare_ptrs), outcome) in plans.iter().zip(outcomes) {
            match outcome {
                Outcome::FailedCompare(idx) => {
                    // Distinguish a moved tip (retry everything) from stale
                    // cached leaves (invalidate just those and retry; the
                    // next attempt reads them fresh). Invalidate stale
                    // leaves even when the tip also failed, or the retry
                    // would re-issue the same doomed compares.
                    for (ci, ptr) in compare_ptrs {
                        if idx.contains(ci) {
                            self.ncache.invalidate(tree, *ptr);
                            stale_leaf = true;
                        }
                    }
                    if idx.contains(&0) {
                        self.note_retry(tree, RetryCause::StaleTip);
                        return Ok(BatchOutcome::Retry);
                    }
                }
                Outcome::Committed(res) => {
                    for (ptr, raw) in read_ptrs.iter().zip(res.data) {
                        let val = minuet_dyntx::decode_obj_shared(&raw);
                        if let Ok(node) = Node::decode(&val.data) {
                            let node = Arc::new(node);
                            if node.height == 0 && cache_leaves {
                                self.ncache.put(tree, *ptr, val.seqno, node.clone());
                            }
                            leaves.insert(
                                *ptr,
                                LeafImage {
                                    seqno: val.seqno,
                                    node,
                                    raw: Some(val.data),
                                },
                            );
                        }
                        // Undecodable images (freed / rewritten slots) stay
                        // absent from `leaves`; their groups fall back.
                    }
                    for (_, ptr) in compare_ptrs {
                        let (seqno, node) = cached[ptr].clone();
                        // Seqno validated in the same minitransaction as
                        // the tip compare: the cached image is current.
                        self.stats.leaf_cache_hits += 1;
                        leaves.insert(
                            *ptr,
                            LeafImage {
                                seqno,
                                node,
                                raw: None,
                            },
                        );
                    }
                }
            }
        }
        if stale_leaf {
            self.stats.record_retry(RetryCause::Validation);
            return Ok(BatchOutcome::Retry);
        }

        // ---- 3. Serve each group: answer gets directly; stage mutations
        // and pipeline their commits. ----
        let mut fallback: Vec<usize> = Vec::new();
        let mut staged: Vec<StagedCommit<'_>> = Vec::new();
        // Per staged group: member indices, displaced old values, the leaf
        // slot, and (for simple in-place writes) the staged leaf image to
        // re-install into the validated cache once the group commits.
        type StagedGroup = (
            Vec<usize>,
            Vec<Option<Value>>,
            NodePtr,
            Option<(u32, NodePtr, Arc<Node>)>,
        );
        let mut staged_members: Vec<StagedGroup> = Vec::new();
        for (leaf_ptr, group) in groups {
            let Some(img) = leaves.get(&leaf_ptr) else {
                // Freed or rewritten slot: the route was stale.
                fallback.extend(group.members);
                continue;
            };
            let (leaf_seq, node) = (&img.seqno, img.node.clone());
            let covered = node.height == 0
                && group
                    .members
                    .iter()
                    .all(|&i| in_range(&node.low, &node.high, &items[i].0));
            let current = covered
                && matches!(
                    self.version_check(tree, &node, ctx.sid)?,
                    VersionCheck::Current
                );
            if !current {
                fallback.extend(group.members);
                continue;
            }

            match kind {
                BatchKind::Get => {
                    // The leaf read and the tip compare were one atomic
                    // minitransaction: each lookup is serializable at the
                    // fetch point, no commit needed (the batched analogue
                    // of the fully-piggy-backed read-only fast path).
                    for &i in &group.members {
                        results[i] = node.leaf_get(&items[i].0).cloned();
                    }
                    self.stats.ops += group.members.len() as u64;
                    self.stats.batched_ops += group.members.len() as u64;
                }
                BatchKind::Put | BatchKind::Remove => {
                    let mut gtx = DynTx::with_piggyback(&sin, mc.cfg.piggyback);
                    // Pin the tip and the fetched leaf into the read set
                    // (§4.1: the cached tip joins the read set; the leaf
                    // at the version the grouped fetch observed or
                    // revalidated). Cache-served leaves pin the version
                    // only — commit still validates the seqno.
                    gtx.assume(TxKey::Repl(layout.tip()), tip_seq, tip_val.encode());
                    match &img.raw {
                        Some(raw) => gtx.assume(
                            TxKey::Plain(layout.node_obj(leaf_ptr)),
                            *leaf_seq,
                            raw.clone(),
                        ),
                        None => {
                            gtx.assume_version(TxKey::Plain(layout.node_obj(leaf_ptr)), *leaf_seq)
                        }
                    }
                    // Record the routed internal chain as dirty
                    // observations so split/CoW parent rewrites promote
                    // with the right expected versions.
                    for e in &group.route {
                        gtx.note_dirty(layout.node_obj(e.ptr), e.seqno);
                    }

                    // Apply the members in input order (duplicates observe
                    // earlier members, as sequential execution would). A
                    // staged leaf may overflow by at most one application,
                    // because `materialize` splits once per level: the
                    // moment the leaf overflows, every remaining member of
                    // the group diverts to the per-key path — wholesale,
                    // so same-key members never reorder across the batch /
                    // fallback boundary.
                    let payload_cap = mc.cfg.split_payload_cap();
                    let max_entries = mc.cfg.max_leaf_entries;
                    let mut members = group.members.clone();
                    members.sort_unstable();
                    let mut new_leaf = (*node).clone();
                    let mut applied: Vec<usize> = Vec::new();
                    let mut olds: Vec<Option<Value>> = Vec::new();
                    for (pos, &i) in members.iter().enumerate() {
                        if new_leaf.overflows(payload_cap, max_entries) {
                            fallback.extend_from_slice(&members[pos..]);
                            break;
                        }
                        let (key, value) = &items[i];
                        olds.push(match kind {
                            BatchKind::Put => {
                                new_leaf.leaf_put(key.clone(), value.clone().expect("put value"))
                            }
                            BatchKind::Remove => new_leaf.leaf_remove(key),
                            BatchKind::Get => unreachable!(),
                        });
                        applied.push(i);
                    }
                    if applied.is_empty() {
                        continue;
                    }
                    let members = applied;

                    let mut path = group.route;
                    path.push(PathEntry {
                        ptr: leaf_ptr,
                        link: leaf_ptr,
                        seqno: *leaf_seq,
                        node,
                    });
                    let level = path.len() - 1;
                    match self.materialize(&mut gtx, tree, &ctx, &path, level, new_leaf)? {
                        Attempt::Done(()) => {
                            let written = self.last_leaf_written.take();
                            staged.push(gtx.stage_commit());
                            staged_members.push((members, olds, leaf_ptr, written));
                        }
                        Attempt::Retry(_) => {
                            self.last_leaf_written = None;
                            fallback.extend(members)
                        }
                    }
                }
            }
        }

        // ---- 4. Pipelined group commits: one batched round trip per
        // participant memnode. Validation failures retry per key. ----
        let commit_results = commit_many(staged).map_err(|e| match e {
            TxError::Unavailable(mem) => Error::Unavailable(mem),
            TxError::DeadlineExceeded => Error::DeadlineExceeded,
            TxError::Validation => unreachable!("exec_many reports validation per member"),
            TxError::NoReadyReplica => unreachable!("staging failures surface per member"),
        })?;
        let mut requeue: Vec<usize> = Vec::new();
        for ((members, olds, leaf_ptr, written), outcome) in
            staged_members.into_iter().zip(commit_results)
        {
            match outcome {
                Ok(info) => {
                    self.install_committed_leaf(&info, written);
                    self.stats.ops += members.len() as u64;
                    self.stats.batched_ops += members.len() as u64;
                    for (i, old) in members.into_iter().zip(olds) {
                        results[i] = old;
                    }
                }
                Err(TxError::Validation) => {
                    // A concurrent writer won this leaf. The tip is not
                    // implicated (its staleness surfaces as a fetch-time
                    // FailedCompare), so drop the now-stale cached leaf and
                    // re-batch these members against a fresh image.
                    self.ncache.invalidate(tree, leaf_ptr);
                    self.stats.record_retry(RetryCause::Validation);
                    requeue.extend(members);
                }
                Err(TxError::NoReadyReplica) => {
                    // Membership transition window: nothing about the leaf
                    // is stale, just retry once a replica is ready.
                    self.stats.record_retry(RetryCause::NoReadyReplica);
                    requeue.extend(members);
                }
                Err(TxError::Unavailable(mem)) => return Err(Error::Unavailable(mem)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            }
        }
        Ok(BatchOutcome::Served { fallback, requeue })
    }

    /// Bulk-loads an **empty** tree bottom-up: the sorted pairs are packed
    /// into full leaves, internal levels are built over them, and the
    /// whole structure commits in one dynamic transaction that validates
    /// the root is still the fresh empty leaf — so a concurrent writer
    /// either serializes entirely before the load (making it fail with
    /// [`Error::TreeNotEmpty`] on retry) or entirely after it. Far cheaper
    /// than K inserts: no per-key traversals and no splits, just one
    /// commit minitransaction carrying every node image.
    ///
    /// Input pairs may arrive unsorted; duplicate keys keep the last
    /// value. Returns the number of records loaded.
    ///
    /// ```
    /// # use minuet_core::{MinuetCluster, TreeConfig};
    /// let mc = MinuetCluster::new(2, 1, TreeConfig::default());
    /// let mut p = mc.proxy();
    /// let pairs: Vec<_> = (0..1000u32)
    ///     .map(|i| (format!("k{i:04}").into_bytes(), i.to_le_bytes().to_vec()))
    ///     .collect();
    /// assert_eq!(p.bulk_load(0, pairs).unwrap(), 1000);
    /// assert_eq!(p.get(0, b"k0042").unwrap(), Some(42u32.to_le_bytes().to_vec()));
    /// ```
    pub fn bulk_load(&mut self, tree: u32, pairs: Vec<(Key, Value)>) -> Result<usize, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::BULK_LOAD);
        let mut pairs = pairs;
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        // Last value wins for duplicate keys, as sequential puts would.
        pairs.reverse();
        pairs.dedup_by(|a, b| a.0 == b.0);
        pairs.reverse();
        if pairs.is_empty() {
            return Ok(0);
        }
        let count = pairs.len();

        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = *mc.layout(tree);
        // Keep allocated slots across validation retries so an aborted
        // attempt's slots are reused instead of leaked.
        let mut pool: Vec<NodePtr> = Vec::new();
        let mut attempts = 0usize;
        loop {
            if attempts >= mc.cfg.max_op_retries {
                return Err(Error::TooManyRetries { attempts });
            }
            let mut tx = DynTx::with_piggyback(&sin, mc.cfg.piggyback);
            let ctx = match self.resolve(&mut tx, tree, OpTarget::MainlineTip)? {
                Attempt::Done(c) => c,
                Attempt::Retry(c) => {
                    self.note_retry(tree, c);
                    attempts += 1;
                    backoff(attempts);
                    continue;
                }
            };
            // The root must still be the fresh empty leaf of the current
            // tip version; it joins the read set, so commit validation
            // re-checks this against concurrent writers.
            let root_raw = match tx.read(layout.node_obj(ctx.root)) {
                Ok(r) => r,
                Err(TxError::Validation) => {
                    self.note_retry(tree, RetryCause::Validation);
                    attempts += 1;
                    backoff(attempts);
                    continue;
                }
                Err(TxError::NoReadyReplica) => {
                    self.note_retry(tree, RetryCause::NoReadyReplica);
                    attempts += 1;
                    backoff(attempts);
                    continue;
                }
                Err(TxError::Unavailable(mem)) => return Err(Error::Unavailable(mem)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            let root = Node::decode(&root_raw).map_err(Error::Corrupt)?;
            if !(root.height == 0 && root.is_empty() && root.created == ctx.sid) {
                return Err(Error::TreeNotEmpty { tree });
            }

            match self.stage_bulk_tree(&mut tx, tree, &ctx, ctx.root, &pairs, &mut pool)? {
                Attempt::Done(()) => {}
                Attempt::Retry(c) => {
                    self.note_retry(tree, c);
                    attempts += 1;
                    backoff(attempts);
                    continue;
                }
            }
            match tx.commit() {
                Ok(_) => {
                    self.stats.ops += 1;
                    return Ok(count);
                }
                Err(TxError::Validation) => {
                    self.note_retry(tree, RetryCause::Validation);
                    attempts += 1;
                    backoff(attempts);
                }
                Err(TxError::NoReadyReplica) => {
                    self.note_retry(tree, RetryCause::NoReadyReplica);
                    attempts += 1;
                    backoff(attempts);
                }
                Err(TxError::Unavailable(mem)) => return Err(Error::Unavailable(mem)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            }
        }
    }

    /// Takes a node slot: the first `cursor` entries of `pool` are in use
    /// by the current attempt, later entries are left over from aborted
    /// attempts and reused before allocating fresh ones (so validation
    /// retries never leak slots).
    fn bulk_slot(
        &mut self,
        tree: u32,
        pool: &mut Vec<NodePtr>,
        cursor: &mut usize,
    ) -> Result<NodePtr, Error> {
        if *cursor == pool.len() {
            pool.push(self.alloc_any(tree)?);
        }
        let ptr = pool[*cursor];
        *cursor += 1;
        Ok(ptr)
    }

    /// Stages the bottom-up tree for `pairs` into `tx`: leaves packed to
    /// capacity, internal levels above them, the top level written into
    /// the existing root slot (the TIP's root pointer never moves).
    fn stage_bulk_tree(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        ctx: &OpCtx,
        root_ptr: NodePtr,
        pairs: &[(Key, Value)],
        pool: &mut Vec<NodePtr>,
    ) -> Result<Attempt<()>, Error> {
        let payload_cap = self.mc.cfg.split_payload_cap();
        let max_leaf = self.mc.cfg.max_leaf_entries;
        let max_internal = self.mc.cfg.max_internal_entries;
        let sid = ctx.sid;
        let mut cursor = 0usize;

        // Pack leaves greedily up to the overflow thresholds. Packing runs
        // with infinity fences but the real fences are finite keys, so
        // leave room for the worst-case fence growth (two finite fences of
        // the longest key in the batch).
        let max_klen = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let pack_cap = payload_cap.saturating_sub(2 * (2 + max_klen)).max(64);
        let mut leaf_nodes: Vec<Node> = Vec::new();
        let mut cur = Node::empty_root(sid);
        for (k, v) in pairs {
            let mut probe = cur.clone();
            probe.leaf_put(k.clone(), v.clone());
            if !cur.is_empty() && probe.overflows(pack_cap, max_leaf) {
                leaf_nodes.push(std::mem::replace(&mut cur, Node::empty_root(sid)));
                cur.leaf_put(k.clone(), v.clone());
            } else {
                cur = probe;
            }
        }
        leaf_nodes.push(cur);

        // Fences: leaf i covers [sep(i), sep(i+1)) with sep = first key.
        let seps: Vec<Key> = leaf_nodes
            .iter()
            .skip(1)
            .map(|n| match &n.body {
                NodeBody::Leaf { entries } => entries[0].0.clone(),
                NodeBody::Internal { .. } => unreachable!(),
            })
            .collect();
        for (i, leaf) in leaf_nodes.iter_mut().enumerate() {
            leaf.low = if i == 0 {
                Fence::NegInf
            } else {
                Fence::Key(seps[i - 1].clone())
            };
            leaf.high = if i == seps.len() {
                Fence::PosInf
            } else {
                Fence::Key(seps[i].clone())
            };
        }

        if leaf_nodes.len() == 1 {
            // Everything fits in the root leaf.
            self.write_node(tx, tree, root_ptr, &leaf_nodes[0]);
            return Ok(Attempt::Done(()));
        }

        // Write the leaves into fresh slots and build internal levels over
        // them until one node remains; that node becomes the root image.
        let mut level: Vec<(Fence, Fence, NodePtr)> = Vec::new();
        for leaf in &leaf_nodes {
            let ptr = self.bulk_slot(tree, pool, &mut cursor)?;
            self.write_node(tx, tree, ptr, leaf);
            level.push((leaf.low.clone(), leaf.high.clone(), ptr));
        }
        let mut height: u8 = 1;
        loop {
            let mut next: Vec<(Fence, Fence, NodePtr)> = Vec::new();
            let mut nodes: Vec<Node> = Vec::new();
            let mut chunk_start = 0usize;
            while chunk_start < level.len() {
                // Grow the chunk until the encoded node would overflow.
                let mut end = chunk_start + 1;
                let mut node = Node {
                    height,
                    created: sid,
                    desc: Vec::new(),
                    low: level[chunk_start].0.clone(),
                    high: level[chunk_start].1.clone(),
                    body: NodeBody::Internal {
                        seps: Vec::new(),
                        kids: vec![level[chunk_start].2],
                    },
                };
                while end < level.len() {
                    let mut probe = node.clone();
                    if let NodeBody::Internal { seps, kids } = &mut probe.body {
                        seps.push(
                            level[end]
                                .0
                                .as_key()
                                .expect("non-first child has a finite low fence")
                                .clone(),
                        );
                        kids.push(level[end].2);
                    }
                    probe.high = level[end].1.clone();
                    if probe.overflows(payload_cap, max_internal) {
                        break;
                    }
                    node = probe;
                    end += 1;
                }
                node.high = level[end - 1].1.clone();
                nodes.push(node);
                chunk_start = end;
            }
            if nodes.len() == 1 {
                // The single top node is the new root, written in place.
                self.write_node(tx, tree, root_ptr, &nodes[0]);
                return Ok(Attempt::Done(()));
            }
            assert!(
                nodes.len() < level.len(),
                "bulk_load cannot shrink a level: separator keys too large \
                 for the configured node payload"
            );
            for node in &nodes {
                let ptr = self.bulk_slot(tree, pool, &mut cursor)?;
                self.write_node(tx, tree, ptr, node);
                next.push((node.low.clone(), node.high.clone(), ptr));
            }
            level = next;
            height += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{MinuetCluster, TreeConfig};
    use minuet_sinfonia::with_op_net;

    fn key(i: u32) -> Vec<u8> {
        format!("k{i:05}").into_bytes()
    }

    #[test]
    fn multi_put_then_multi_get_roundtrip() {
        let mc = MinuetCluster::new(2, 1, TreeConfig::small_nodes(8));
        let mut p = mc.proxy();
        let pairs: Vec<_> = (0..100).map(|i| (key(i), vec![i as u8])).collect();
        let olds = p.multi_put(0, &pairs).unwrap();
        assert!(olds.iter().all(|o| o.is_none()));

        let keys: Vec<_> = (0..120).map(key).collect();
        let got = p.multi_get(0, &keys).unwrap();
        for (i, v) in got.iter().enumerate() {
            if i < 100 {
                assert_eq!(v.as_deref(), Some(&[i as u8][..]), "key {i}");
            } else {
                assert!(v.is_none(), "key {i}");
            }
        }
        // Second put over the same keys returns the previous values.
        let olds = p.multi_put(0, &pairs).unwrap();
        for (i, o) in olds.iter().enumerate() {
            assert_eq!(o.as_deref(), Some(&[i as u8][..]));
        }
    }

    #[test]
    fn multi_remove_returns_old_values() {
        let mc = MinuetCluster::new(2, 1, TreeConfig::small_nodes(8));
        let mut p = mc.proxy();
        let pairs: Vec<_> = (0..40).map(|i| (key(i), vec![i as u8])).collect();
        p.multi_put(0, &pairs).unwrap();
        let keys: Vec<_> = (0..50).map(key).collect();
        let olds = p.multi_remove(0, &keys).unwrap();
        for (i, o) in olds.iter().enumerate() {
            if i < 40 {
                assert_eq!(o.as_deref(), Some(&[i as u8][..]));
            } else {
                assert!(o.is_none());
            }
        }
        assert!(p.scan_serializable(0, b"", usize::MAX).unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_in_batch_behave_sequentially() {
        let mc = MinuetCluster::new(1, 1, TreeConfig::small_nodes(8));
        let mut p = mc.proxy();
        let pairs = vec![(key(1), vec![1]), (key(1), vec![2]), (key(1), vec![3])];
        let olds = p.multi_put(0, &pairs).unwrap();
        assert_eq!(olds, vec![None, Some(vec![1]), Some(vec![2])]);
        assert_eq!(p.get(0, &key(1)).unwrap(), Some(vec![3]));
    }

    #[test]
    fn batched_updates_amortize_round_trips() {
        let mc = MinuetCluster::new(2, 1, TreeConfig::default());
        let mut p = mc.proxy();
        let pairs: Vec<_> = (0..64).map(|i| (key(i), vec![0u8; 8])).collect();
        p.multi_put(0, &pairs).unwrap();
        // Warm the internal-node cache and tip cache.
        let keys: Vec<_> = (0..64).map(key).collect();
        p.multi_get(0, &keys).unwrap();

        // Updates of existing keys: no splits, so the fast path serves
        // everything. 2 memnodes -> at most 2 fetch + 2 commit trips.
        let (_, net) = with_op_net(|| {
            let update: Vec<_> = (0..64).map(|i| (key(i), vec![1u8; 8])).collect();
            p.multi_put(0, &update).unwrap();
        });
        assert!(
            net.round_trips <= 6,
            "expected ~4 round trips for 64 batched puts, got {}",
            net.round_trips
        );
        // A follow-up single put fuses into exactly one commit round trip:
        // the batch re-installed its committed leaf images, so the leaf is
        // served from cache and the commit carries compare+write.
        let (_, single) = with_op_net(|| {
            p.put(0, key(0), vec![2u8; 8]).unwrap();
        });
        assert_eq!(
            single.round_trips, 1,
            "cached-leaf put must fuse into one commit round trip, got {}",
            single.round_trips
        );

        let (_, getnet) = with_op_net(|| {
            p.multi_get(0, &keys).unwrap();
        });
        assert!(
            getnet.round_trips <= 2,
            "expected <=2 round trips for 64 batched gets, got {}",
            getnet.round_trips
        );
    }

    #[test]
    fn sustained_puts_stay_fused_after_first_commit() {
        // A put-only workload must not degrade to fetch+commit: each
        // successful commit re-installs the written leaf image, so every
        // put after the first costs exactly one (compare+write) round
        // trip. Regression test for the validated-leaf cache being
        // invalidated by `write_node` and never repopulated.
        let mc = MinuetCluster::new(2, 1, TreeConfig::default());
        let mut p = mc.proxy();
        p.put(0, key(7), vec![0]).unwrap(); // cold: route + fetch + commit
        for round in 1..=8u8 {
            let (_, net) = with_op_net(|| {
                p.put(0, key(7), vec![round]).unwrap();
            });
            assert_eq!(
                net.round_trips, 1,
                "warm put #{round} took {} round trips, want 1 (fused)",
                net.round_trips
            );
        }
        assert_eq!(p.get(0, &key(7)).unwrap(), Some(vec![8]));
    }

    #[test]
    fn batch_with_splits_stays_correct() {
        // Tiny nodes force splits mid-batch; conflicting groups fall back.
        let mc = MinuetCluster::new(2, 1, TreeConfig::small_nodes(4));
        let mut p = mc.proxy();
        for round in 0..4u8 {
            let pairs: Vec<_> = (0..200)
                .map(|i| (key(i * 7 % 256), vec![round, i as u8]))
                .collect();
            p.multi_put(0, &pairs).unwrap();
        }
        let scan = p.scan_serializable(0, b"", usize::MAX).unwrap();
        let distinct: std::collections::HashSet<_> =
            (0..200u32).map(|i| key(i * 7 % 256)).collect();
        assert_eq!(scan.len(), distinct.len());
    }

    #[test]
    fn bulk_load_builds_searchable_tree() {
        let mc = MinuetCluster::new(3, 1, TreeConfig::small_nodes(6));
        let mut p = mc.proxy();
        let pairs: Vec<_> = (0..500).rev().map(|i| (key(i), vec![i as u8])).collect();
        assert_eq!(p.bulk_load(0, pairs).unwrap(), 500);
        for i in (0..500).step_by(37) {
            assert_eq!(p.get(0, &key(i)).unwrap(), Some(vec![i as u8]), "key {i}");
        }
        let scan = p.scan_serializable(0, b"", usize::MAX).unwrap();
        assert_eq!(scan.len(), 500);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
        // Loaded tree keeps working under further writes and splits.
        for i in 500..600 {
            p.put(0, key(i), vec![9]).unwrap();
        }
        assert_eq!(p.scan_serializable(0, b"", usize::MAX).unwrap().len(), 600);
    }

    #[test]
    fn bulk_load_dedups_and_handles_small_inputs() {
        let mc = MinuetCluster::new(1, 1, TreeConfig::default());
        let mut p = mc.proxy();
        assert_eq!(p.bulk_load(0, Vec::new()).unwrap(), 0);
        let pairs = vec![(key(1), vec![1]), (key(1), vec![2]), (key(0), vec![0])];
        assert_eq!(p.bulk_load(0, pairs).unwrap(), 2);
        assert_eq!(p.get(0, &key(1)).unwrap(), Some(vec![2]));
        assert_eq!(p.get(0, &key(0)).unwrap(), Some(vec![0]));
    }

    #[test]
    fn bulk_load_refuses_non_empty_tree() {
        let mc = MinuetCluster::new(1, 1, TreeConfig::default());
        let mut p = mc.proxy();
        p.put(0, key(0), vec![1]).unwrap();
        match p.bulk_load(0, vec![(key(1), vec![1])]) {
            Err(crate::error::Error::TreeNotEmpty { tree: 0 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // The original data is untouched.
        assert_eq!(p.get(0, &key(0)).unwrap(), Some(vec![1]));
    }

    #[test]
    fn full_validation_mode_falls_back_to_per_key_path() {
        let cfg = TreeConfig {
            mode: crate::tree::ConcurrencyMode::FullValidation,
            ..TreeConfig::small_nodes(8)
        };
        let mc = MinuetCluster::new(2, 1, cfg);
        let mut p = mc.proxy();
        let pairs: Vec<_> = (0..50).map(|i| (key(i), vec![i as u8])).collect();
        p.multi_put(0, &pairs).unwrap();
        let keys: Vec<_> = (0..50).map(key).collect();
        let got = p.multi_get(0, &keys).unwrap();
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, v)| v.as_deref() == Some(&[i as u8][..])));
        assert_eq!(p.stats.batched_ops, 0);
        assert!(p.stats.batch_fallbacks >= 100);
    }
}
