//! Proxies: the per-thread handles through which clients execute B-tree
//! operations (Figure 1).
//!
//! A proxy owns the non-coherent caches (internal nodes, tip, catalog
//! entries), a local allocator chunk cache, and the optimistic retry loop
//! that wraps every operation. Operations are strictly serializable:
//! up-to-date reads and writes validate the tip snapshot id (§4.1), and
//! reads on read-only snapshots are immutable by construction.

use crate::alloc::ChunkCache;
use crate::cache::NodeCache;
use crate::catalog::{CatEntry, TipVal};
use crate::error::{attempt, tx_attempt, Attempt, Error, RetryCause};
use crate::key::{Key, Value};
use crate::node::SnapshotId;
use crate::stats::ProxyStats;
use crate::traverse::{fetch_cat_raw, OpCtx};
use crate::tree::MinuetCluster;
use minuet_dyntx::{CommitInfo, DynTx, SeqNo, TxError, TxKey};
use minuet_obs::{event, span, SpanKind};
use minuet_sinfonia::MemNodeId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Tags identifying the proxy operation at the root of a trace
/// ([`minuet_obs::Trace::op_tag`]).
pub mod op_tag {
    /// Point lookup (`get` / `get_branch`).
    pub const GET: u8 = 1;
    /// Insert or update (`put` / `put_branch`).
    pub const PUT: u8 = 2;
    /// Removal (`remove` / `remove_branch`).
    pub const REMOVE: u8 = 3;
    /// Snapshot lookup (`get_at`).
    pub const GET_AT: u8 = 4;
    /// Multi-key transaction (`txn`).
    pub const TXN: u8 = 5;
    /// Batched lookup (`multi_get`).
    pub const MULTI_GET: u8 = 6;
    /// Batched mutation (`multi_put` / `multi_remove`).
    pub const MULTI_PUT: u8 = 7;
    /// Sorted preload (`bulk_load`).
    pub const BULK_LOAD: u8 = 8;
}

/// Renders an op tag for dashboards; the inverse of the constants above.
pub fn op_tag_name(tag: u8) -> &'static str {
    match tag {
        op_tag::GET => "get",
        op_tag::PUT => "put",
        op_tag::REMOVE => "remove",
        op_tag::GET_AT => "get_at",
        op_tag::TXN => "txn",
        op_tag::MULTI_GET => "multi_get",
        op_tag::MULTI_PUT => "multi_put",
        op_tag::BULK_LOAD => "bulk_load",
        _ => "op",
    }
}

/// Retry-event tag marking a batch member diverted to the per-key path
/// (no [`RetryCause`] maps to it; see [`retry_tag`]).
pub(crate) const RETRY_TAG_BATCH_FALLBACK: u8 = 7;

/// Span event tag for a retry, derived from its cause so traces show why
/// an attempt was thrown away.
pub(crate) fn retry_tag(cause: RetryCause) -> u8 {
    match cause {
        RetryCause::Validation => 1,
        RetryCause::FenceViolation => 2,
        RetryCause::HeightMismatch => 3,
        RetryCause::StaleVersion => 4,
        RetryCause::StaleTip => 5,
        RetryCause::TornRead => 6,
        RetryCause::NoReadyReplica => 8,
    }
}

/// Identifies the snapshot an operation targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpTarget {
    /// The mainline tip (validated through the replicated TIP object).
    MainlineTip,
    /// A specific writable tip (validated through its catalog entry).
    TipSid(SnapshotId),
    /// A read-only snapshot (no validation; §4.2).
    Snapshot(SnapshotId),
}

/// A per-thread client handle. Create with
/// [`MinuetCluster::proxy`](crate::tree::MinuetCluster::proxy); cheap to
/// create, not shareable across threads (spawn one per worker).
///
/// Besides the single-key operations shown here, a proxy offers range
/// scans (`scan_at`, `scan_serializable`), snapshot and branch creation,
/// multi-key transactions ([`Proxy::txn`]), and the batched multi-op API
/// (`multi_get` / `multi_put` / `multi_remove` / `bulk_load` in
/// [`crate::batch`]).
///
/// ```
/// use minuet_core::{MinuetCluster, TreeConfig};
///
/// let mc = MinuetCluster::new(2, 1, TreeConfig::default());
/// let mut p = mc.proxy();
/// assert_eq!(p.put(0, b"a".to_vec(), b"1".to_vec()).unwrap(), None);
/// assert_eq!(p.get(0, b"a").unwrap(), Some(b"1".to_vec()));
/// assert_eq!(p.remove(0, b"a").unwrap(), Some(b"1".to_vec()));
/// // Per-operation statistics accumulate on the handle.
/// assert_eq!(p.stats.ops, 3);
/// ```
pub struct Proxy {
    pub(crate) mc: Arc<MinuetCluster>,
    pub(crate) home: MemNodeId,
    pub(crate) ncache: NodeCache,
    pub(crate) tip_cache: HashMap<u32, (SeqNo, TipVal)>,
    pub(crate) cat_cache: HashMap<(u32, SnapshotId), (SeqNo, CatEntry)>,
    pub(crate) chunks: ChunkCache,
    /// The cached leaf the current attempt pinned by version only (the
    /// validated-leaf-cache fast path): a validation failure means this
    /// entry is the prime suspect, so `note_retry` invalidates it.
    pub(crate) last_leaf_assumed: Option<(u32, crate::node::NodePtr)>,
    /// The leaf image the current attempt staged as a simple in-place
    /// write (no split, no copy-on-write). On commit success it is
    /// re-installed into the validated leaf cache at its committed
    /// seqno — `write_node` invalidated the pre-write entry — so a
    /// following mutation of the same leaf stays on the fused 1-RTT
    /// path instead of paying a fetch to repopulate the cache.
    pub(crate) last_leaf_written: Option<(u32, crate::node::NodePtr, Arc<crate::node::Node>)>,
    /// Operation statistics.
    pub stats: ProxyStats,
}

pub(crate) fn backoff(attempt: usize) {
    use std::cell::Cell;
    thread_local! {
        static SEED: Cell<u64> = const { Cell::new(0x9E3779B97F4A7C15) };
    }
    let ceil = 1u64 << attempt.min(8);
    let j = SEED.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x % ceil
    });
    let _backoff = span(SpanKind::Backoff);
    std::thread::sleep(Duration::from_micros(1 + j));
}

impl Proxy {
    pub(crate) fn new(mc: Arc<MinuetCluster>, home: MemNodeId) -> Proxy {
        let chunk = mc.cfg.alloc_chunk;
        let cache_cap = mc.cfg.node_cache_capacity;
        let mut ncache = NodeCache::with_capacity(cache_cap);
        ncache.attach(mc.sinfonia.obs());
        Proxy {
            mc,
            home,
            ncache,
            tip_cache: HashMap::new(),
            cat_cache: HashMap::new(),
            chunks: ChunkCache::new(chunk),
            last_leaf_assumed: None,
            last_leaf_written: None,
            stats: ProxyStats::default(),
        }
    }

    /// Node-cache counters `(hits, misses, evictions, resident)` — the
    /// observability handle for the cache-bounding satellite.
    pub fn cache_stats(&self) -> (u64, u64, u64, usize) {
        (
            self.ncache.hits.get(),
            self.ncache.misses.get(),
            self.ncache.evictions.get(),
            self.ncache.len(),
        )
    }

    /// The proxy's preferred memnode for replicated reads.
    pub fn home(&self) -> MemNodeId {
        self.home
    }

    /// The cluster this proxy belongs to.
    pub fn cluster(&self) -> &Arc<MinuetCluster> {
        &self.mc
    }

    /// Captures a read-your-writes session token: the per-memnode WAL
    /// tails of this (primary) cluster right now. Every write this proxy
    /// has seen committed is at or below the token, so a replication
    /// follower that has passed it
    /// ([`MinuetCluster::wait_replicated`](crate::tree::MinuetCluster::wait_replicated))
    /// serves all of this session's writes.
    pub fn session_token(&self) -> minuet_sinfonia::repl::ReplToken {
        self.mc.sinfonia.repl_token()
    }

    /// Invalidation + accounting shared by all retry sites.
    pub(crate) fn note_retry(&mut self, tree: u32, cause: RetryCause) {
        self.stats.record_retry(cause);
        event(SpanKind::Retry, retry_tag(cause));
        // Metadata observations may be stale; refresh them on the next
        // attempt. Node-cache entries are invalidated at the fault sites —
        // except a version-pinned cached leaf, whose staleness surfaces
        // only as a commit validation failure: drop it here so the retry
        // fetches fresh instead of re-validating the same stale image.
        if let Some((t, ptr)) = self.last_leaf_assumed.take() {
            self.ncache.invalidate(t, ptr);
        }
        self.tip_cache.remove(&tree);
        self.cat_cache.retain(|(t, _), _| *t != tree);
    }

    /// Re-installs a committed in-place leaf write into the validated
    /// leaf cache at the seqno the commit installed, so put-after-put on
    /// the same leaf keeps fusing into one round trip. A commit whose
    /// `installed` set does not carry the leaf (e.g. a piggybacked
    /// one-shot that skipped staging) simply leaves the cache cold.
    pub(crate) fn install_committed_leaf(
        &mut self,
        info: &CommitInfo,
        written: Option<(u32, crate::node::NodePtr, Arc<crate::node::Node>)>,
    ) {
        let Some((tree, ptr, node)) = written else {
            return;
        };
        let key = TxKey::Plain(self.mc.layout(tree).node_obj(ptr));
        if let Some((_, seqno)) = info.installed.iter().find(|(k, _)| *k == key) {
            self.ncache.put(tree, ptr, *seqno, node);
        }
    }

    /// Runs one operation to completion with optimistic retries.
    pub(crate) fn run_op<T>(
        &mut self,
        tree: u32,
        f: impl FnMut(&mut Proxy, &mut DynTx<'_>) -> Result<Attempt<T>, Error>,
    ) -> Result<T, Error> {
        let budget = self.mc.cfg.max_op_retries;
        self.run_op_budget(tree, budget, f)
    }

    /// Like [`Proxy::run_op`] with an explicit retry budget. Read-only
    /// snapshot scans use a small budget so that scanning a snapshot the
    /// GC has reclaimed fails promptly instead of retrying at length.
    pub(crate) fn run_op_budget<T>(
        &mut self,
        tree: u32,
        budget: usize,
        mut f: impl FnMut(&mut Proxy, &mut DynTx<'_>) -> Result<Attempt<T>, Error>,
    ) -> Result<T, Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let mut attempts = 0usize;
        loop {
            if attempts >= budget {
                return Err(Error::TooManyRetries { attempts });
            }
            // An expired ambient deadline stops the retry loop before the
            // next attempt issues any RPC (lower layers also check, but
            // this is the guaranteed no-new-work cutoff).
            if minuet_sinfonia::OpDeadline::current().expired() {
                return Err(Error::DeadlineExceeded);
            }
            let mut tx = DynTx::with_piggyback(&sin, mc.cfg.piggyback);
            self.last_leaf_assumed = None;
            self.last_leaf_written = None;
            match f(self, &mut tx)? {
                Attempt::Retry(cause) => {
                    self.note_retry(tree, cause);
                    attempts += 1;
                    backoff(attempts);
                }
                Attempt::Done(v) => match tx.commit() {
                    Ok(info) => {
                        self.last_leaf_assumed = None;
                        let written = self.last_leaf_written.take();
                        self.install_committed_leaf(&info, written);
                        self.stats.ops += 1;
                        return Ok(v);
                    }
                    Err(TxError::Validation) => {
                        self.note_retry(tree, RetryCause::Validation);
                        attempts += 1;
                        backoff(attempts);
                    }
                    Err(TxError::NoReadyReplica) => {
                        self.note_retry(tree, RetryCause::NoReadyReplica);
                        attempts += 1;
                        backoff(attempts);
                    }
                    Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                    Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
                },
            }
        }
    }

    /// Resolves an operation target to a snapshot id + root, pinning the
    /// tip / catalog entry into the read set for writable targets (§4.1,
    /// §5.1).
    pub(crate) fn resolve(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        target: OpTarget,
    ) -> Result<Attempt<OpCtx>, Error> {
        let _route = span(SpanKind::Route);
        let mc = self.mc.clone();
        let layout = *mc.layout(tree);
        match target {
            OpTarget::MainlineTip => {
                if let Some((seq, tip)) = self.tip_cache.get(&tree) {
                    tx.assume(TxKey::Repl(layout.tip()), *seq, tip.encode());
                    return Ok(Attempt::Done(OpCtx {
                        sid: tip.sid,
                        root: tip.root,
                        writable: true,
                    }));
                }
                let raw = match tx.read_repl(layout.tip(), self.home) {
                    Ok(r) => r,
                    Err(e) => return tx_attempt(e),
                };
                let tip = TipVal::decode(&raw).expect("tip object corrupt");
                if let Some(seq) = tx.observed_seqno(&TxKey::Repl(layout.tip())) {
                    self.tip_cache.insert(tree, (seq, tip));
                }
                Ok(Attempt::Done(OpCtx {
                    sid: tip.sid,
                    root: tip.root,
                    writable: true,
                }))
            }
            OpTarget::TipSid(sid) => {
                let repl = layout
                    .catalog_entry(sid)
                    .ok_or(Error::NoSuchSnapshot(sid))?;
                if let Some((seq, entry)) = self.cat_cache.get(&(tree, sid)) {
                    if entry.is_writable() {
                        tx.assume(TxKey::Repl(repl), *seq, entry.encode());
                        return Ok(Attempt::Done(OpCtx {
                            sid,
                            root: entry.root,
                            writable: true,
                        }));
                    }
                    // Cached entry says read-only: confirm with a fresh
                    // read below before surfacing the error.
                    self.cat_cache.remove(&(tree, sid));
                }
                let raw = match tx.read_repl(repl, self.home) {
                    Ok(r) => r,
                    Err(e) => return tx_attempt(e),
                };
                let entry = CatEntry::decode(&raw).ok_or(Error::NoSuchSnapshot(sid))?;
                if let Some(seq) = tx.observed_seqno(&TxKey::Repl(repl)) {
                    self.cat_cache.insert((tree, sid), (seq, entry));
                }
                if !entry.is_writable() {
                    return Err(Error::SnapshotReadOnly(sid));
                }
                Ok(Attempt::Done(OpCtx {
                    sid,
                    root: entry.root,
                    writable: true,
                }))
            }
            OpTarget::Snapshot(sid) => {
                let shared = mc.shared(tree);
                if let Some(root) = shared.vcache.root(sid) {
                    return Ok(Attempt::Done(OpCtx {
                        sid,
                        root,
                        writable: false,
                    }));
                }
                match fetch_cat_raw(&mc, tree, sid, self.home)? {
                    None => Err(Error::NoSuchSnapshot(sid)),
                    Some((_, entry)) => {
                        shared.vcache.insert(sid, entry.parent, entry.root);
                        Ok(Attempt::Done(OpCtx {
                            sid,
                            root: entry.root,
                            writable: false,
                        }))
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Single-key operations
    // ------------------------------------------------------------------

    /// Strictly-serializable point lookup at the mainline tip.
    pub fn get(&mut self, tree: u32, key: &[u8]) -> Result<Option<Value>, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::GET);
        self.run_op(tree, |p, tx| {
            let ctx = attempt!(p.resolve(tx, tree, OpTarget::MainlineTip)?);
            p.try_get(tx, tree, &ctx, key)
        })
    }

    /// Inserts or updates a key at the mainline tip; returns the previous
    /// value.
    pub fn put(&mut self, tree: u32, key: Key, value: Value) -> Result<Option<Value>, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::PUT);
        self.run_op(tree, |p, tx| {
            let ctx = attempt!(p.resolve(tx, tree, OpTarget::MainlineTip)?);
            let mut k = Some(key.clone());
            let mut v = Some(value.clone());
            p.try_mutate(tx, tree, &ctx, &key, &mut |leaf| {
                leaf.leaf_put(k.take().unwrap(), v.take().unwrap())
            })
        })
    }

    /// Removes a key at the mainline tip; returns the previous value.
    pub fn remove(&mut self, tree: u32, key: &[u8]) -> Result<Option<Value>, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::REMOVE);
        self.run_op(tree, |p, tx| {
            let ctx = attempt!(p.resolve(tx, tree, OpTarget::MainlineTip)?);
            p.try_mutate(tx, tree, &ctx, key, &mut |leaf| leaf.leaf_remove(key))
        })
    }

    /// Point lookup on any snapshot. For read-only snapshots this never
    /// validates and never aborts due to concurrent updates (§4.2); if
    /// `sid` is a writable tip the lookup is validated against its branch
    /// id instead.
    pub fn get_at(
        &mut self,
        tree: u32,
        sid: SnapshotId,
        key: &[u8],
    ) -> Result<Option<Value>, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::GET_AT);
        self.run_op(tree, |p, tx| {
            let ctx = attempt!(p.resolve(tx, tree, OpTarget::Snapshot(sid))?);
            p.try_get(tx, tree, &ctx, key)
        })
    }

    /// Strictly-serializable lookup at a specific writable tip (§5.1).
    pub fn get_branch(
        &mut self,
        tree: u32,
        sid: SnapshotId,
        key: &[u8],
    ) -> Result<Option<Value>, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::GET);
        self.run_op(tree, |p, tx| {
            let ctx = attempt!(p.resolve(tx, tree, OpTarget::TipSid(sid))?);
            p.try_get(tx, tree, &ctx, key)
        })
    }

    /// Inserts or updates a key at a specific writable tip (§5.1).
    pub fn put_branch(
        &mut self,
        tree: u32,
        sid: SnapshotId,
        key: Key,
        value: Value,
    ) -> Result<Option<Value>, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::PUT);
        self.run_op(tree, |p, tx| {
            let ctx = attempt!(p.resolve(tx, tree, OpTarget::TipSid(sid))?);
            let mut k = Some(key.clone());
            let mut v = Some(value.clone());
            p.try_mutate(tx, tree, &ctx, &key, &mut |leaf| {
                leaf.leaf_put(k.take().unwrap(), v.take().unwrap())
            })
        })
    }

    /// Removes a key at a specific writable tip.
    pub fn remove_branch(
        &mut self,
        tree: u32,
        sid: SnapshotId,
        key: &[u8],
    ) -> Result<Option<Value>, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::REMOVE);
        self.run_op(tree, |p, tx| {
            let ctx = attempt!(p.resolve(tx, tree, OpTarget::TipSid(sid))?);
            p.try_mutate(tx, tree, &ctx, key, &mut |leaf| leaf.leaf_remove(key))
        })
    }

    /// Reads the current mainline tip (one round trip; not cached).
    pub fn current_tip(&mut self, tree: u32) -> Result<(SnapshotId, crate::node::NodePtr), Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = mc.layout(tree);
        let mut tx = DynTx::new(&sin);
        let raw = match tx.read_repl(layout.tip(), self.home) {
            Ok(r) => r,
            Err(TxError::Validation) => unreachable!("plain read cannot fail validation"),
            Err(TxError::NoReadyReplica) => {
                unreachable!("reads bind their own replica, not the commit fallback")
            }
            Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
            Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
        };
        let tip = TipVal::decode(&raw).expect("tip object corrupt");
        Ok((tip.sid, tip.root))
    }

    // ------------------------------------------------------------------
    // Multi-key / multi-index transactions
    // ------------------------------------------------------------------

    /// Runs a closure of multiple operations (possibly across trees) as
    /// one strictly-serializable dynamic transaction, retrying
    /// transparently on conflicts (§6.2's multi-index transactions).
    ///
    /// ```
    /// # use minuet_core::{MinuetCluster, TreeConfig};
    /// let mc = MinuetCluster::new(2, 2, TreeConfig::default());
    /// let mut p = mc.proxy();
    /// p.txn(|t| {
    ///     let v = t.get(0, b"balance")?.unwrap_or_default();
    ///     t.put(1, b"audit".to_vec(), v)?;
    ///     Ok(())
    /// })
    /// .unwrap();
    /// ```
    pub fn txn<R>(
        &mut self,
        mut f: impl FnMut(&mut Txn<'_, '_, '_>) -> Result<R, TxnError>,
    ) -> Result<R, Error> {
        let _op = self.mc.sinfonia.obs().op(op_tag::TXN);
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let mut attempts = 0usize;
        loop {
            if attempts >= mc.cfg.max_op_retries {
                return Err(Error::TooManyRetries { attempts });
            }
            let mut tx = DynTx::with_piggyback(&sin, mc.cfg.piggyback);
            let r = {
                let mut t = Txn {
                    proxy: self,
                    tx: &mut tx,
                };
                f(&mut t)
            };
            match r {
                Ok(v) => match tx.commit() {
                    Ok(_) => {
                        self.stats.ops += 1;
                        return Ok(v);
                    }
                    Err(TxError::Validation) => {
                        self.note_retry(0, RetryCause::Validation);
                        attempts += 1;
                        backoff(attempts);
                    }
                    Err(TxError::NoReadyReplica) => {
                        self.note_retry(0, RetryCause::NoReadyReplica);
                        attempts += 1;
                        backoff(attempts);
                    }
                    Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                    Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
                },
                Err(TxnError::Retry(cause)) => {
                    self.note_retry(0, cause);
                    attempts += 1;
                    backoff(attempts);
                }
                Err(TxnError::Error(e)) => return Err(e),
            }
        }
    }
}

/// Error type inside [`Proxy::txn`] closures. Use `?` freely: internal
/// conflict aborts are retried by the loop, real errors propagate out.
#[derive(Debug)]
pub enum TxnError {
    /// Internal: the attempt must be retried.
    #[doc(hidden)]
    Retry(RetryCause),
    /// A non-retryable error.
    Error(Error),
}

impl From<Error> for TxnError {
    fn from(e: Error) -> Self {
        TxnError::Error(e)
    }
}

/// Handle passed to [`Proxy::txn`] closures: the same single-key
/// operations, all staged into one dynamic transaction.
pub struct Txn<'p, 't, 'c> {
    proxy: &'p mut Proxy,
    tx: &'t mut DynTx<'c>,
}

impl Txn<'_, '_, '_> {
    fn lift<T>(r: Result<Attempt<T>, Error>) -> Result<T, TxnError> {
        match r {
            Ok(Attempt::Done(v)) => Ok(v),
            Ok(Attempt::Retry(c)) => Err(TxnError::Retry(c)),
            Err(e) => Err(TxnError::Error(e)),
        }
    }

    /// Transactional lookup at the mainline tip of `tree`.
    pub fn get(&mut self, tree: u32, key: &[u8]) -> Result<Option<Value>, TxnError> {
        let ctx = Self::lift(self.proxy.resolve(self.tx, tree, OpTarget::MainlineTip))?;
        Self::lift(self.proxy.try_get(self.tx, tree, &ctx, key))
    }

    /// Transactional insert/update at the mainline tip of `tree`.
    pub fn put(&mut self, tree: u32, key: Key, value: Value) -> Result<Option<Value>, TxnError> {
        let ctx = Self::lift(self.proxy.resolve(self.tx, tree, OpTarget::MainlineTip))?;
        let mut k = Some(key.clone());
        let mut v = Some(value);
        Self::lift(
            self.proxy
                .try_mutate(self.tx, tree, &ctx, &key, &mut |leaf| {
                    leaf.leaf_put(k.take().unwrap(), v.take().unwrap())
                }),
        )
    }

    /// Transactional removal at the mainline tip of `tree`.
    pub fn remove(&mut self, tree: u32, key: &[u8]) -> Result<Option<Value>, TxnError> {
        let ctx = Self::lift(self.proxy.resolve(self.tx, tree, OpTarget::MainlineTip))?;
        Self::lift(
            self.proxy
                .try_mutate(self.tx, tree, &ctx, key, &mut |leaf| leaf.leaf_remove(key)),
        )
    }

    /// Lookup on a read-only snapshot within the transaction.
    pub fn get_at(
        &mut self,
        tree: u32,
        sid: SnapshotId,
        key: &[u8],
    ) -> Result<Option<Value>, TxnError> {
        let ctx = Self::lift(self.proxy.resolve(self.tx, tree, OpTarget::Snapshot(sid)))?;
        Self::lift(self.proxy.try_get(self.tx, tree, &ctx, key))
    }
}
