//! Snapshot and branch creation (§4.1 Fig. 6, §5.1).
//!
//! Creating a snapshot freezes the source tip and materializes a fresh
//! writable tip whose root is a copy of the source root (so ordinary
//! operations never copy roots). Creating a branch is the same operation
//! against a read-only source (§5.1: "creating a new snapshot simply
//! creates the first branch from an existing snapshot").
//!
//! The commit updates the replicated TIP/GLOBAL/catalog objects at every
//! memnode atomically — the heavyweight, contention-prone operation the
//! paper mitigates with blocking minitransactions (§4.1) and the snapshot
//! creation service (§4.3).

use crate::catalog::{CatEntry, GlobalVal, TipVal};
use crate::error::{Attempt, Error, RetryCause};
use crate::node::{Node, NodePtr, SnapshotId};
use crate::proxy::Proxy;
use crate::tree::VersionMode;
use minuet_dyntx::{DynTx, TxError};

/// Result of a snapshot creation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The now-read-only snapshot (Fig. 6's output: scan this).
    pub frozen_sid: SnapshotId,
    /// Root of the frozen snapshot.
    pub frozen_root: NodePtr,
    /// The new writable tip.
    pub new_tip: SnapshotId,
    /// Root of the new tip.
    pub new_root: NodePtr,
}

impl Proxy {
    /// One attempt at creating a snapshot/branch from `from` (`None` =
    /// the mainline tip).
    pub(crate) fn try_create_from(
        &mut self,
        tx: &mut DynTx<'_>,
        tree: u32,
        from: Option<SnapshotId>,
    ) -> Result<Attempt<SnapshotInfo>, Error> {
        let mc = self.mc.clone();
        let layout = *mc.layout(tree);
        let home = self.home;

        // Global header: next snapshot id.
        let graw = match tx.read_repl(layout.global(), home) {
            Ok(r) => r,
            Err(e) => return crate::error::tx_attempt(e),
        };
        let global = GlobalVal::decode(&graw).ok_or(Error::CatalogFull)?;
        let next = global.next_sid;
        if layout.catalog_entry(next).is_none() {
            return Err(Error::CatalogFull);
        }

        // Tip (always read: we must know whether the mainline advances).
        let traw = match tx.read_repl(layout.tip(), home) {
            Ok(r) => r,
            Err(e) => return crate::error::tx_attempt(e),
        };
        let tip = TipVal::decode(&traw).expect("tip object corrupt");

        let src = from.unwrap_or(tip.sid);
        if from.is_some() && mc.cfg.version_mode == VersionMode::Linear && src != tip.sid {
            return Err(Error::BranchingDisabled);
        }

        // Source catalog entry.
        let cat_repl = layout
            .catalog_entry(src)
            .ok_or(Error::NoSuchSnapshot(src))?;
        let craw = match tx.read_repl(cat_repl, home) {
            Ok(r) => r,
            Err(e) => return crate::error::tx_attempt(e),
        };
        let mut cat_src = CatEntry::decode(&craw).ok_or(Error::NoSuchSnapshot(src))?;
        if cat_src.deleted {
            return Err(Error::NoSuchSnapshot(src));
        }
        if cat_src.nbranches as usize >= mc.cfg.beta {
            if mc.cfg.version_mode == VersionMode::Linear {
                // The "tip" we read already has a branch: stale cache race;
                // retry with a fresh tip.
                return Ok(Attempt::Retry(RetryCause::StaleTip));
            }
            return Err(Error::BranchingFactorExceeded {
                from: src,
                beta: mc.cfg.beta,
            });
        }

        // Copy the source root, tagged with the new snapshot id.
        let src_root_obj = layout.node_obj(cat_src.root);
        let rraw = match tx.read(src_root_obj) {
            Ok(r) => r,
            Err(e) => return crate::error::tx_attempt(e),
        };
        let old_root = match Node::decode(&rraw) {
            Ok(n) => n,
            Err(_) => return Ok(Attempt::Retry(RetryCause::TornRead)),
        };
        let mut new_root = old_root.clone();
        new_root.created = next;
        new_root.desc = Vec::new();
        let new_root_ptr = self.alloc_any(tree)?;
        self.write_node(tx, tree, new_root_ptr, &new_root);

        // Old root bookkeeping: record the copy for GC. Roots are never
        // reached through child pointers, so this set is not consulted by
        // traversals and is exempt from the β bound.
        let mut old_root_upd = old_root;
        old_root_upd.desc.push(crate::node::DescEntry {
            sid: next,
            ptr: new_root_ptr,
        });
        self.write_node(tx, tree, cat_src.root, &old_root_upd);

        // Catalog updates.
        let new_entry = CatEntry {
            root: new_root_ptr,
            parent: src,
            branch_id: 0,
            nbranches: 0,
            deleted: false,
        };
        tx.write_repl(layout.catalog_entry(next).unwrap(), new_entry.encode());
        let first_branch = cat_src.branch_id == 0;
        if first_branch {
            cat_src.branch_id = next;
        }
        cat_src.nbranches += 1;
        tx.write_repl(cat_repl, cat_src.encode());

        // Global header.
        tx.write_repl(
            layout.global(),
            GlobalVal {
                next_sid: next + 1,
                lowest: global.lowest,
            }
            .encode(),
        );

        // Mainline advance: the first branch off the mainline tip becomes
        // the new tip.
        if src == tip.sid && first_branch {
            tx.write_repl(
                layout.tip(),
                TipVal {
                    sid: next,
                    root: new_root_ptr,
                }
                .encode(),
            );
        }

        Ok(Attempt::Done(SnapshotInfo {
            frozen_sid: src,
            frozen_root: cat_src.root,
            new_tip: next,
            new_root: new_root_ptr,
        }))
    }

    /// Creates a snapshot of the mainline tip (Fig. 6 semantics): the
    /// previous tip becomes read-only (scan it via
    /// [`SnapshotInfo::frozen_sid`]) and a fresh tip takes over.
    ///
    /// Prefer [`crate::scs::SnapshotService::create`] in concurrent
    /// settings: it serializes creations and shares snapshots (§4.3).
    pub fn create_snapshot(&mut self, tree: u32) -> Result<SnapshotInfo, Error> {
        self.create_from(tree, None)
    }

    /// Creates a writable branch from any existing snapshot (§5.1).
    /// Returns the new branch tip.
    pub fn create_branch(&mut self, tree: u32, from: SnapshotId) -> Result<SnapshotId, Error> {
        if self.mc.cfg.version_mode == VersionMode::Linear {
            return Err(Error::BranchingDisabled);
        }
        Ok(self.create_from(tree, Some(from))?.new_tip)
    }

    pub(crate) fn create_from(
        &mut self,
        tree: u32,
        from: Option<SnapshotId>,
    ) -> Result<SnapshotInfo, Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let mut attempts = 0usize;
        loop {
            if attempts >= mc.cfg.max_op_retries {
                return Err(Error::TooManyRetries { attempts });
            }
            attempts += 1;
            let mut tx = DynTx::with_piggyback(&sin, mc.cfg.piggyback);
            if mc.cfg.blocking_meta_updates {
                tx.set_blocking_commit(mc.cfg.blocking_wait);
            }
            match self.try_create_from(&mut tx, tree, from)? {
                Attempt::Retry(cause) => {
                    self.note_retry(tree, cause);
                    continue;
                }
                Attempt::Done(info) => match tx.commit() {
                    Ok(_) => {
                        self.stats.ops += 1;
                        let shared = mc.shared(tree);
                        shared
                            .vcache
                            .insert(info.new_tip, info.frozen_sid, info.new_root);
                        self.tip_cache.remove(&tree);
                        self.cat_cache.remove(&(tree, info.frozen_sid));
                        return Ok(info);
                    }
                    Err(TxError::Validation) => {
                        self.note_retry(tree, RetryCause::Validation);
                        continue;
                    }
                    Err(TxError::NoReadyReplica) => {
                        self.note_retry(tree, RetryCause::NoReadyReplica);
                        continue;
                    }
                    Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                    Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
                },
            }
        }
    }
}
