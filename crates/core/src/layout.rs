//! Address-space layout of a Minuet tree.
//!
//! Each tree occupies a fixed stride of every memnode's address space,
//! containing well-known metadata objects followed by the node-slot region:
//!
//! ```text
//! +0        TIP          replicated object: (mainline tip sid, root ptr)      §4.1
//! +64       GLOBAL       replicated object: (next snapshot id, flags)         §5.1
//! +128      ALLOC        per-memnode allocator state (bump + free list head)
//! +4096     CATALOG      replicated objects, one per snapshot id              §5.1
//! +cat_end  SEQTAB       replicated raw seqno table for internal nodes,
//!                        one entry per (home memnode, slot)                   §2.3
//! +tab_end  NODES        node slots, `slot_size` bytes each
//! ```
//!
//! "Replicated" means the same offset holds a replica on every memnode;
//! reads use any replica and writes update all (see
//! [`minuet_dyntx::ReplRef`]).
//!
//! The seqno table is only *written* in the baseline FullValidation mode,
//! but the region is always reserved: its per-memnode size is
//! `n_mems × slots_per_mem × 8` bytes, growing with aggregate cluster
//! capacity — reproducing the space overhead the paper criticizes in §3.

use crate::node::NodePtr;
use minuet_dyntx::{ObjRef, ReplRef, OBJ_HEADER};
use minuet_sinfonia::{ItemRange, MemNodeId};

/// Capacity of the small metadata objects (TIP, GLOBAL, ALLOC).
pub const META_OBJ_CAP: u32 = 64;

/// Capacity of one catalog entry object.
pub const CAT_SLOT_CAP: u32 = 64;

/// Layout parameters of one tree.
#[derive(Debug, Clone, Copy)]
pub struct LayoutParams {
    /// Maximum node payload bytes (the paper uses 4 kB tree nodes).
    pub node_payload: u32,
    /// Node slots per memnode.
    pub slots_per_mem: u32,
    /// Maximum number of snapshots (catalog entries).
    pub max_snapshots: u64,
}

impl Default for LayoutParams {
    fn default() -> Self {
        LayoutParams {
            node_payload: 4096,
            slots_per_mem: 1 << 15,
            max_snapshots: 1 << 16,
        }
    }
}

/// Resolved layout of one tree within every memnode's address space.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// Base offset of this tree's region.
    pub base: u64,
    /// Parameters.
    pub params: LayoutParams,
    cat_base: u64,
    seqtab_base: u64,
    nodes_base: u64,
    /// Total bytes of address space this tree uses per memnode.
    pub stride: u64,
}

impl Layout {
    /// Computes the layout of tree `tree_id` for a cluster of `n_mems`
    /// memnodes.
    pub fn new(tree_id: u32, params: LayoutParams, n_mems: usize) -> Layout {
        let cat_rel = 4096u64;
        let cat_end = cat_rel + params.max_snapshots * CAT_SLOT_CAP as u64;
        let seqtab_rel = (cat_end + 63) & !63;
        let seqtab_end = seqtab_rel + n_mems as u64 * params.slots_per_mem as u64 * 8;
        let nodes_rel = (seqtab_end + 63) & !63;
        let slot_size = Self::slot_size_for(params.node_payload);
        let stride = nodes_rel + params.slots_per_mem as u64 * slot_size;
        let base = tree_id as u64 * ((stride + 4095) & !4095);
        Layout {
            base,
            params,
            cat_base: base + cat_rel,
            seqtab_base: base + seqtab_rel,
            nodes_base: base + nodes_rel,
            stride,
        }
    }

    /// Size of one node slot: object header + payload, rounded to 16 bytes.
    pub fn slot_size_for(node_payload: u32) -> u64 {
        ((OBJ_HEADER + node_payload + 15) & !15) as u64
    }

    /// Size of one node slot for this layout.
    pub fn slot_size(&self) -> u64 {
        Self::slot_size_for(self.params.node_payload)
    }

    /// Address-space capacity a memnode needs to host trees `0..n_trees`.
    pub fn required_capacity(n_trees: u32, params: LayoutParams, n_mems: usize) -> u64 {
        let last = Layout::new(n_trees.saturating_sub(1), params, n_mems);
        last.base + ((last.stride + 4095) & !4095)
    }

    /// The replicated TIP object: (mainline tip snapshot id, root pointer).
    pub fn tip(&self) -> ReplRef {
        ReplRef::new(self.base, META_OBJ_CAP)
    }

    /// The replicated GLOBAL header object: (next snapshot id, flags).
    pub fn global(&self) -> ReplRef {
        ReplRef::new(self.base + 64, META_OBJ_CAP)
    }

    /// The allocator-state object on memnode `mem`.
    pub fn alloc_state(&self, mem: MemNodeId) -> ObjRef {
        ObjRef::new(mem, self.base + 128, META_OBJ_CAP)
    }

    /// The replicated catalog entry object for snapshot `sid`.
    ///
    /// Returns `None` when the catalog region is exhausted.
    pub fn catalog_entry(&self, sid: u64) -> Option<ReplRef> {
        if sid >= self.params.max_snapshots {
            return None;
        }
        Some(ReplRef::new(
            self.cat_base + sid * CAT_SLOT_CAP as u64,
            CAT_SLOT_CAP,
        ))
    }

    /// The raw (headerless) replicated seqno-table entry for node `ptr`,
    /// as stored on memnode `at`. Baseline FullValidation mode only.
    pub fn seqtab_entry(&self, ptr: NodePtr, at: MemNodeId) -> ItemRange {
        let idx = ptr.mem.0 as u64 * self.params.slots_per_mem as u64 + ptr.slot as u64;
        ItemRange::new(at, self.seqtab_base + idx * 8, 8)
    }

    /// The object reference for node slot `ptr`.
    pub fn node_obj(&self, ptr: NodePtr) -> ObjRef {
        debug_assert!(ptr.slot < self.params.slots_per_mem);
        ObjRef::new(
            ptr.mem,
            self.nodes_base + ptr.slot as u64 * self.slot_size(),
            OBJ_HEADER + self.params.node_payload,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let p = LayoutParams::default();
        let l = Layout::new(0, p, 8);
        assert!(l.base + 192 <= l.cat_base);
        let cat_end = l.cat_base + p.max_snapshots * CAT_SLOT_CAP as u64;
        assert!(cat_end <= l.seqtab_base);
        let tab_end = l.seqtab_base + 8 * p.slots_per_mem as u64 * 8;
        assert!(tab_end <= l.nodes_base);
    }

    #[test]
    fn trees_do_not_overlap() {
        let p = LayoutParams::default();
        let a = Layout::new(0, p, 4);
        let b = Layout::new(1, p, 4);
        assert!(a.base + a.stride <= b.base);
    }

    #[test]
    fn node_objects_distinct_and_in_region() {
        let p = LayoutParams {
            node_payload: 256,
            slots_per_mem: 100,
            max_snapshots: 16,
        };
        let l = Layout::new(0, p, 2);
        let o0 = l.node_obj(NodePtr {
            mem: MemNodeId(0),
            slot: 0,
        });
        let o1 = l.node_obj(NodePtr {
            mem: MemNodeId(0),
            slot: 1,
        });
        assert!(o0.off >= l.nodes_base);
        assert_eq!(o1.off - o0.off, l.slot_size());
        assert!(o0.off + o0.cap as u64 <= o1.off + l.slot_size());
    }

    #[test]
    fn capacity_covers_all_trees() {
        let p = LayoutParams {
            node_payload: 512,
            slots_per_mem: 64,
            max_snapshots: 8,
        };
        let cap = Layout::required_capacity(3, p, 4);
        let last = Layout::new(2, p, 4);
        let last_node = last.node_obj(NodePtr {
            mem: MemNodeId(0),
            slot: 63,
        });
        assert!(last_node.off + last_node.cap as u64 <= cap);
    }

    #[test]
    fn seqtab_entries_distinct_per_home() {
        let p = LayoutParams {
            node_payload: 256,
            slots_per_mem: 10,
            max_snapshots: 8,
        };
        let l = Layout::new(0, p, 4);
        let at = MemNodeId(2);
        let e0 = l.seqtab_entry(
            NodePtr {
                mem: MemNodeId(0),
                slot: 3,
            },
            at,
        );
        let e1 = l.seqtab_entry(
            NodePtr {
                mem: MemNodeId(1),
                slot: 3,
            },
            at,
        );
        assert_ne!(e0.off, e1.off);
        assert_eq!(e0.mem, at);
        // Entries stay inside the table region.
        let last = l.seqtab_entry(
            NodePtr {
                mem: MemNodeId(3),
                slot: 9,
            },
            at,
        );
        assert!(last.off + 8 <= l.node_obj(NodePtr { mem: at, slot: 0 }).off);
    }

    #[test]
    fn catalog_bounds() {
        let p = LayoutParams {
            node_payload: 256,
            slots_per_mem: 10,
            max_snapshots: 4,
        };
        let l = Layout::new(0, p, 1);
        assert!(l.catalog_entry(0).is_some());
        assert!(l.catalog_entry(3).is_some());
        assert!(l.catalog_entry(4).is_none());
    }
}
