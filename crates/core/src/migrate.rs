//! Live migration of B-tree nodes between memnodes, and the rebalancing
//! policies built on it — the mechanism behind the paper's incremental
//! scale-out claim (§1: "grows incrementally by adding memory nodes").
//!
//! ## Protocol
//!
//! Relocating a physical node `X` from one memnode to another happens in
//! two minitransactions, both executed by a proxy with no coordination
//! beyond Sinfonia's own concurrency control:
//!
//! 1. **Reserve** — a slot is allocated on the target memnode and a
//!    *reservation marker* is blind-written into it. The marker decodes
//!    as neither a node nor a free-list segment, so a traversal that
//!    somehow lands on it aborts as a torn read, and a crash between the
//!    phases leaves an orphan that
//!    [`Proxy::reclaim_orphaned_reservations`] returns to the free list.
//! 2. **Swap** — one dynamic transaction that (a) re-reads `X` and writes
//!    its current image into the reserved slot, (b) rewrites **every
//!    referencer** of `X` — parent child-pointers, descendant-set
//!    forwarding entries, catalog root pointers, and the TIP — to the new
//!    location, and (c) frees `X`'s slot through the ordinary free-list
//!    path, all validated and applied atomically by the commit
//!    minitransaction.
//!
//! ## Why validating the scanned referencers is enough
//!
//! The referencer set is discovered by an unsynchronized raw scan, so it
//! can be stale. The swap transaction therefore reads every scanned
//! referencer transactionally and aborts (and rescans) if any differs
//! from its scanned version. That closes the race with concurrent
//! *creation* of new referencers because of a structural invariant of
//! this codebase: **every operation that creates a new reference to an
//! existing physical node also writes some existing referencer of that
//! node in the same transaction** — a copy-on-write or split rewrites the
//! parent and desc-tags the original, a root split rewrites the root in
//! place, and a snapshot/branch creation rewrites the TIP, the source
//! catalog entry, and desc-tags the old root. Since the swap writes every
//! referencer, any such transaction either commits first (some referencer
//! no longer matches its scanned seqno → the migration rescans) or
//! second (its validation fails against the migration's writes → it
//! retries and observes the new location).
//!
//! ## Readers
//!
//! Concurrent proxies keep traversing through their non-coherent
//! [`crate::cache::NodeCache`]s. A stale cached parent still naming the
//! old location leads to a slot that now holds a free-list segment or a
//! reused node: the decode failure, fence check, version tag, or leaf
//! validation catches it, the cached path is invalidated, and the retry
//! observes the swapped pointers. Snapshot reads stay correct in linear
//! mode because any node written into a reused slot carries a creation
//! tag above every frozen snapshot id.

use crate::alloc::{push_free_segment, AllocState};
use crate::catalog::{CatEntry, TipVal};
use crate::error::Error;
use crate::node::{Node, NodePtr, SnapshotId};
use crate::proxy::Proxy;
use crate::stats::{occupancy, MemOccupancy};
use crate::tree::{ConcurrencyMode, MinuetCluster};
use minuet_dyntx::{decode_obj, DynTx, SeqNo, TxError, TxKey};
use minuet_sinfonia::MemNodeId;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Leading byte of a migration reservation marker. Distinct from the
/// node magic (`0xB7`), the free-segment magic (`0xFE`), and the
/// tombstone (`0xFD`), so a reservation decodes as nothing else.
const RESERVATION_MAGIC: u8 = 0xFC;

/// Encodes the reservation marker written into a target slot: the magic
/// plus the source location, for diagnostics and orphan accounting.
fn encode_reservation(src: NodePtr) -> Vec<u8> {
    let mut v = Vec::with_capacity(7);
    v.push(RESERVATION_MAGIC);
    v.extend_from_slice(&src.mem.0.to_le_bytes());
    v.extend_from_slice(&src.slot.to_le_bytes());
    v
}

/// True if a slot payload is a migration reservation marker (in-flight,
/// or orphaned by a crash between the reserve and swap phases — the
/// latter are returned to the free list by
/// [`Proxy::reclaim_orphaned_reservations`]).
pub fn is_reservation(payload: &[u8]) -> bool {
    payload.first() == Some(&RESERVATION_MAGIC)
}

/// Everything that referenced the source node at scan time, with the
/// versions observed, so the swap can validate the set is still current.
struct RefScan {
    /// Nodes whose child pointers or descendant-set entries name the
    /// source, with the seqno observed by the scan.
    nodes: Vec<(NodePtr, SeqNo)>,
    /// Catalog entries whose root is the source: `(sid, parent, seqno)`.
    cats: Vec<(SnapshotId, SnapshotId, SeqNo)>,
    /// Observed TIP seqno, if the TIP's root is the source.
    tip: Option<SeqNo>,
}

/// A committed migration: the node's new location plus the sequence
/// numbers the commit installed, used to patch sibling referencer hints
/// during batched drains/rebalances.
struct Moved {
    to: NodePtr,
    installed: Vec<(TxKey, SeqNo)>,
    /// True if the committing attempt used the caller's batch-scanned
    /// hint unmodified. Only then may sibling hints be patched and kept:
    /// a success that needed a rescan may have written referencers the
    /// siblings' hints never saw, so those hints must be discarded.
    pristine: bool,
}

/// Disposition of one swap attempt.
enum Swap {
    /// Committed; migration done (carries the installed seqnos).
    Done(Vec<(TxKey, SeqNo)>),
    /// The source slot no longer holds a decodable node (freed or
    /// reclaimed concurrently): nothing to migrate.
    SourceGone,
    /// A referencer changed, validation failed, or the reservation was
    /// reclaimed: rescan and retry.
    Retry,
}

/// Attempt budget for one migration (each retry re-scans referencers, so
/// this is intentionally far below the per-op optimistic budget).
const MIGRATE_RETRIES: usize = 256;

impl Proxy {
    /// Scans every possible referencer of `target` (see
    /// [`Proxy::scan_referencers_many`]).
    fn scan_referencers(&mut self, tree: u32, target: NodePtr) -> Result<RefScan, Error> {
        let mut map = self.scan_referencers_many(tree, &[target])?;
        Ok(map.remove(&target).expect("requested target present"))
    }

    /// One full sweep collecting the referencers of every node in
    /// `targets`: all node slots on all memnodes (child pointers and
    /// descendant-set entries), every allocated catalog entry's root, and
    /// the TIP. Batched drains and rebalances scan once per pass instead
    /// of once per migrated node.
    ///
    /// **Seqno fence.** Object seqnos are global transaction ids, so a
    /// watermark drawn before the sweep splits referencer versions into
    /// pre-scan and mid-scan. A transaction that commits *during* the
    /// sweep can write a brand-new referencer into a slot the sweep
    /// already passed — invisible — while the existing referencer it
    /// rewrote (every reference-creating transaction writes one; see the
    /// module docs) is swept *afterwards*, showing its post-commit seqno
    /// and validating cleanly. Rejecting any sweep that recorded a seqno
    /// above the watermark closes that window: the racing commit either
    /// left a fenced seqno (rescan) or touched the referencer after we
    /// recorded it (commit-time validation fails). Transitively-created
    /// referencers reduce to the same two cases, since every mid-scan
    /// commit installs post-watermark seqnos.
    fn scan_referencers_many(
        &mut self,
        tree: u32,
        targets: &[NodePtr],
    ) -> Result<std::collections::HashMap<NodePtr, RefScan>, Error> {
        const SCAN_RETRIES: usize = 64;
        for _ in 0..SCAN_RETRIES {
            let watermark = self.mc.sinfonia.next_txid();
            let map = self.scan_referencers_once(tree, targets)?;
            let fenced = map.values().any(|rs| {
                rs.nodes.iter().any(|(_, s)| *s > watermark)
                    || rs.cats.iter().any(|(_, _, s)| *s > watermark)
                    || rs.tip.is_some_and(|s| s > watermark)
            });
            if !fenced {
                return Ok(map);
            }
        }
        Err(Error::TooManyRetries {
            attempts: SCAN_RETRIES,
        })
    }

    /// One unfenced referencer sweep (see [`Proxy::scan_referencers_many`]).
    fn scan_referencers_once(
        &mut self,
        tree: u32,
        targets: &[NodePtr],
    ) -> Result<std::collections::HashMap<NodePtr, RefScan>, Error> {
        use std::collections::{HashMap, HashSet};
        let mc = self.mc.clone();
        let layout = *mc.layout(tree);
        let sin = &mc.sinfonia;
        let tset: HashSet<NodePtr> = targets.iter().copied().collect();
        let mut map: HashMap<NodePtr, RefScan> = targets
            .iter()
            .map(|t| {
                (
                    *t,
                    RefScan {
                        nodes: Vec::new(),
                        cats: Vec::new(),
                        tip: None,
                    },
                )
            })
            .collect();

        for mem in sin.memnode_ids() {
            crate::stats::scan_slots(sin, &layout, mem, &mut |slot, val| {
                let ptr = NodePtr { mem, slot };
                if let Ok(n) = Node::decode(&val.data) {
                    // Each referencing node appears once per target, even
                    // if it references that target through several
                    // pointers (the swap rewrites all of them at once).
                    let mut hit: Vec<NodePtr> = Vec::new();
                    if let crate::node::NodeBody::Internal { kids, .. } = &n.body {
                        for k in kids {
                            if *k != ptr && tset.contains(k) && !hit.contains(k) {
                                hit.push(*k);
                            }
                        }
                    }
                    for d in &n.desc {
                        if d.ptr != ptr && tset.contains(&d.ptr) && !hit.contains(&d.ptr) {
                            hit.push(d.ptr);
                        }
                    }
                    for t in hit {
                        map.get_mut(&t).unwrap().nodes.push((ptr, val.seqno));
                    }
                }
            })?;
        }

        let home = self.home;
        let hnode = sin.node(home);
        let graw = hnode
            .raw_read(layout.global().at(home).off, layout.global().cap)
            .map_err(|u| Error::Unavailable(u.0))?;
        let next_sid =
            crate::catalog::GlobalVal::decode(&decode_obj(&graw).data).map_or(1, |g| g.next_sid);
        for sid in 0..next_sid {
            let Some(repl) = layout.catalog_entry(sid) else {
                break;
            };
            let raw = hnode
                .raw_read(repl.at(home).off, repl.cap)
                .map_err(|u| Error::Unavailable(u.0))?;
            let val = decode_obj(&raw);
            if let Some(e) = CatEntry::decode(&val.data) {
                if let Some(refs) = map.get_mut(&e.root) {
                    refs.cats.push((sid, e.parent, val.seqno));
                }
            }
        }

        let traw = hnode
            .raw_read(layout.tip().at(home).off, layout.tip().cap)
            .map_err(|u| Error::Unavailable(u.0))?;
        let tval = decode_obj(&traw);
        if let Some(t) = TipVal::decode(&tval.data) {
            if let Some(refs) = map.get_mut(&t.root) {
                refs.tip = Some(tval.seqno);
            }
        }
        Ok(map)
    }

    /// One swap attempt: copy, referencer compare-swaps, and the free of
    /// the source, in a single dynamic transaction.
    fn try_swap(
        &mut self,
        tree: u32,
        src: NodePtr,
        target: NodePtr,
        refs: &RefScan,
    ) -> Result<Swap, Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = *mc.layout(tree);
        let home = self.home;
        let mut tx = DynTx::with_piggyback(&sin, mc.cfg.piggyback);

        let src_obj = layout.node_obj(src);
        let raw = match tx.read(src_obj) {
            Ok(r) => r,
            Err(TxError::Validation | TxError::NoReadyReplica) => return Ok(Swap::Retry),
            Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
            Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
        };
        if Node::decode(&raw).is_err() {
            return Ok(Swap::SourceGone);
        }

        // The reservation must still be ours; if the GC reclaimed an
        // (apparently orphaned) marker, the caller re-reserves.
        let tgt_obj = layout.node_obj(target);
        match tx.read(tgt_obj) {
            Ok(t) if is_reservation(&t) => {}
            Ok(_) => return Ok(Swap::Retry),
            Err(TxError::Validation | TxError::NoReadyReplica) => return Ok(Swap::Retry),
            Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
            Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
        }
        tx.write(tgt_obj, raw);

        // Referencers: every one must match its scanned version exactly —
        // see the module docs for why this makes the set complete.
        for &(rptr, seen) in &refs.nodes {
            let robj = layout.node_obj(rptr);
            let rraw = match tx.read(robj) {
                Ok(r) => r,
                Err(TxError::Validation | TxError::NoReadyReplica) => return Ok(Swap::Retry),
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            if tx.observed_seqno(&TxKey::Plain(robj)) != Some(seen) {
                return Ok(Swap::Retry);
            }
            let Ok(mut rnode) = Node::decode(&rraw) else {
                return Ok(Swap::Retry);
            };
            if !swap_references(&mut rnode, src, target) {
                return Ok(Swap::Retry);
            }
            tx.write(robj, rnode.encode());
        }
        for &(sid, _, seen) in &refs.cats {
            let repl = layout
                .catalog_entry(sid)
                .ok_or(Error::NoSuchSnapshot(sid))?;
            let craw = match tx.read_repl(repl, home) {
                Ok(r) => r,
                Err(TxError::Validation | TxError::NoReadyReplica) => return Ok(Swap::Retry),
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            if tx.observed_seqno(&TxKey::Repl(repl)) != Some(seen) {
                return Ok(Swap::Retry);
            }
            let Some(mut entry) = CatEntry::decode(&craw) else {
                return Ok(Swap::Retry);
            };
            if entry.root != src {
                return Ok(Swap::Retry);
            }
            entry.root = target;
            tx.write_repl(repl, entry.encode());
        }
        if let Some(seen) = refs.tip {
            let repl = layout.tip();
            let traw = match tx.read_repl(repl, home) {
                Ok(r) => r,
                Err(TxError::Validation | TxError::NoReadyReplica) => return Ok(Swap::Retry),
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            if tx.observed_seqno(&TxKey::Repl(repl)) != Some(seen) {
                return Ok(Swap::Retry);
            }
            let Some(mut tip) = TipVal::decode(&traw) else {
                return Ok(Swap::Retry);
            };
            if tip.root != src {
                return Ok(Swap::Retry);
            }
            tip.root = target;
            tx.write_repl(repl, tip.encode());
        }

        // Free the source through the ordinary free-list path: the slot
        // itself becomes the segment header, atomically with the swap.
        let state_obj = layout.alloc_state(src.mem);
        let state = match tx.read(state_obj) {
            Ok(r) => AllocState::decode(&r),
            Err(TxError::Validation | TxError::NoReadyReplica) => return Ok(Swap::Retry),
            Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
            Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
        };
        let new_state = push_free_segment(&mut tx, &layout, src.mem, &state, &[src.slot]);
        tx.write(state_obj, new_state.encode());

        match tx.commit() {
            Ok(info) => Ok(Swap::Done(info.installed)),
            Err(TxError::Validation | TxError::NoReadyReplica) => Ok(Swap::Retry),
            Err(TxError::Unavailable(m)) => Err(Error::Unavailable(m)),
            Err(TxError::DeadlineExceeded) => Err(Error::DeadlineExceeded),
        }
    }

    /// Reserves a slot for a migration of `src` on `dst_mem` and marks it
    /// (phase 1 of the protocol). Public as a crash-injection hook for
    /// the recovery tests: a cluster crashed right after this call holds
    /// an orphaned reservation that recovery plus a GC sweep must
    /// reclaim.
    pub fn migrate_reserve(
        &mut self,
        tree: u32,
        src: NodePtr,
        dst_mem: MemNodeId,
    ) -> Result<NodePtr, Error> {
        let mc = self.mc.clone();
        let layout = *mc.layout(tree);
        let target = self.chunks.alloc_on(&mc.sinfonia, &layout, tree, dst_mem)?;
        loop {
            let mut tx = DynTx::new(&mc.sinfonia);
            tx.write(layout.node_obj(target), encode_reservation(src));
            match tx.commit() {
                Ok(_) => return Ok(target),
                Err(TxError::Validation | TxError::NoReadyReplica) => continue, // blind write; transient
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            }
        }
    }

    /// Migrates the physical node at `src` to a fresh slot on `dst_mem`,
    /// transparently to concurrent operations. Returns the new location,
    /// or `Ok(None)` if the source stopped being a live node before the
    /// swap could commit (e.g. freed by GC or already superseded).
    pub fn migrate_node(
        &mut self,
        tree: u32,
        src: NodePtr,
        dst_mem: MemNodeId,
    ) -> Result<Option<NodePtr>, Error> {
        self.migrate_node_hinted(tree, src, dst_mem, None)
            .map(|o| o.map(|m| m.to))
    }

    /// [`Proxy::migrate_node`] with an optional pre-scanned referencer
    /// hint (first attempt only; retries rescan). Returns the installed
    /// seqnos so batch callers can patch sibling hints.
    fn migrate_node_hinted(
        &mut self,
        tree: u32,
        src: NodePtr,
        dst_mem: MemNodeId,
        hint: Option<RefScan>,
    ) -> Result<Option<Moved>, Error> {
        let mc = self.mc.clone();
        if mc.cfg.mode == ConcurrencyMode::FullValidation {
            return Err(Error::ElasticityUnsupported(
                "migration does not maintain the FullValidation seqno table; \
                 use DirtyTraversals",
            ));
        }
        if src.mem == dst_mem {
            return Ok(None);
        }
        mc.migration.started.fetch_add(1, Ordering::Relaxed);

        let mut target: Option<NodePtr> = None;
        let result = self.migrate_attempts(tree, src, dst_mem, hint, &mut target);
        // On any outcome except a committed swap, release the reservation
        // we may still hold: nothing else reclaims it during normal
        // operation (GC ignores markers; only the explicit post-crash
        // reclaim pass touches them). Best-effort on the error paths.
        if !matches!(result, Ok(Some(_))) {
            if let Some(t) = target {
                let _ = self.free_reservation(tree, t);
            }
        }
        result
    }

    /// The reserve/swap retry loop of [`Proxy::migrate_node`]. `target`
    /// reports the reservation still held when this returns without a
    /// committed swap, so the caller can release it.
    fn migrate_attempts(
        &mut self,
        tree: u32,
        src: NodePtr,
        dst_mem: MemNodeId,
        mut hint: Option<RefScan>,
        target: &mut Option<NodePtr>,
    ) -> Result<Option<Moved>, Error> {
        let mc = self.mc.clone();
        for attempt in 0..MIGRATE_RETRIES {
            if attempt > 0 {
                mc.migration.retries.fetch_add(1, Ordering::Relaxed);
            }
            let (refs, pristine) = match hint.take() {
                Some(h) => (h, true), // batch-scanned hint: first attempt only
                None => (self.scan_referencers(tree, src)?, false),
            };
            let tgt = match *target {
                Some(t) => t,
                None => {
                    let t = self.migrate_reserve(tree, src, dst_mem)?;
                    *target = Some(t);
                    t
                }
            };
            match self.try_swap(tree, src, tgt, &refs)? {
                Swap::Done(installed) => {
                    mc.migration.completed.fetch_add(1, Ordering::Relaxed);
                    self.ncache.invalidate(tree, src);
                    // Process-local version cache: swapped catalog roots
                    // must be re-pointed or snapshot resolution would
                    // chase the freed slot forever.
                    let shared = mc.shared(tree);
                    for &(sid, parent, _) in &refs.cats {
                        shared.vcache.insert(sid, parent, tgt);
                    }
                    return Ok(Some(Moved {
                        to: tgt,
                        installed,
                        pristine,
                    }));
                }
                Swap::SourceGone => {
                    mc.migration.aborted.fetch_add(1, Ordering::Relaxed);
                    return Ok(None);
                }
                Swap::Retry => {
                    // If a (misplaced) reclaim pass freed our reservation,
                    // the slot is back on the free list and no longer
                    // ours: reserve a fresh one next attempt.
                    let layout = *mc.layout(tree);
                    let obj = layout.node_obj(tgt);
                    let raw = mc
                        .sinfonia
                        .node(tgt.mem)
                        .raw_read(obj.off, obj.cap)
                        .map_err(|u| Error::Unavailable(u.0))?;
                    if !is_reservation(&decode_obj(&raw).data) {
                        *target = None;
                    }
                }
            }
        }
        Err(Error::TooManyRetries {
            attempts: MIGRATE_RETRIES,
        })
    }

    /// Frees a reservation this proxy owns, transferring the slot to the
    /// memnode's free list. No-op if the slot no longer holds a marker.
    fn free_reservation(&mut self, tree: u32, ptr: NodePtr) -> Result<(), Error> {
        let mc = self.mc.clone();
        let sin = mc.sinfonia.clone();
        let layout = *mc.layout(tree);
        loop {
            let mut tx = DynTx::new(&sin);
            match tx.read(layout.node_obj(ptr)) {
                Ok(r) if is_reservation(&r) => {}
                Ok(_) => return Ok(()),
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            }
            let state_obj = layout.alloc_state(ptr.mem);
            let state = match tx.read(state_obj) {
                Ok(r) => AllocState::decode(&r),
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            };
            let new_state = push_free_segment(&mut tx, &layout, ptr.mem, &state, &[ptr.slot]);
            tx.write(state_obj, new_state.encode());
            match tx.commit() {
                Ok(_) => return Ok(()),
                Err(TxError::Validation | TxError::NoReadyReplica) => continue,
                Err(TxError::Unavailable(m)) => return Err(Error::Unavailable(m)),
                Err(TxError::DeadlineExceeded) => return Err(Error::DeadlineExceeded),
            }
        }
    }

    /// Reclaims reservation markers orphaned by a crash between the
    /// reserve and swap phases, returning their slots to the free lists.
    /// Call while no migration is in flight (e.g. right after recovery):
    /// reclaiming a *live* migration's reservation is safe — its swap
    /// fails validation and re-reserves — but wastes work.
    pub fn reclaim_orphaned_reservations(&mut self, tree: u32) -> Result<u64, Error> {
        let mc = self.mc.clone();
        let layout = *mc.layout(tree);
        let mut reclaimed = 0u64;
        for mem in mc.sinfonia.memnode_ids() {
            let mut orphans: Vec<NodePtr> = Vec::new();
            crate::stats::scan_slots(&mc.sinfonia, &layout, mem, &mut |slot, val| {
                if is_reservation(&val.data) {
                    orphans.push(NodePtr { mem, slot });
                }
            })?;
            for ptr in orphans {
                // `free_reservation` re-confirms transactionally, so a
                // raced slot is skipped, never double-freed.
                self.free_reservation(tree, ptr)?;
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }

    /// Drains every live node of `tree` off `mem` (which is first marked
    /// *retiring* so allocation placement steers away), migrating them to
    /// the least-loaded eligible memnodes. Returns the number of nodes
    /// moved. The retiring mark is left set — this is the decommission
    /// path; clear it with `sinfonia.set_retiring(mem, false)` to reuse
    /// the node.
    ///
    /// Caveat: the retiring mark steers allocation away but is not a hard
    /// ban — if **every** non-retiring memnode runs out of slots, the
    /// allocator's fallback pass places on retiring nodes rather than
    /// failing (capacity pressure beats decommissioning). Re-check
    /// [`crate::stats::occupancy`] immediately before physically removing
    /// a drained node, and re-drain if it regained slots.
    pub fn drain(&mut self, tree: u32, mem: MemNodeId) -> Result<u64, Error> {
        let mc = self.mc.clone();
        let layout = *mc.layout(tree);
        mc.sinfonia.set_retiring(mem, true);
        let mut moved = 0u64;
        for _pass in 0..64 {
            let victims: Vec<NodePtr> = live_slots(&mc, tree, mem)?
                .into_iter()
                .map(|slot| NodePtr { mem, slot })
                .collect();
            if victims.is_empty() {
                return Ok(moved);
            }
            let mut dsts = eligible_targets(&mc, tree, mem)?;
            if dsts.is_empty() {
                return Err(Error::ElasticityUnsupported(
                    "no eligible memnode left to drain onto",
                ));
            }
            // One referencer sweep per pass; each committed migration
            // patches the remaining hints, so the common case stays at
            // one scan for the whole batch instead of one per node.
            let mut hints = self.scan_referencers_many(tree, &victims)?;
            for src in victims {
                // Least-loaded target, tracking the nodes placed this pass.
                let t = dsts.iter_mut().min_by_key(|o| o.live).unwrap();
                let dst = t.mem;
                let hint = hints.remove(&src);
                if let Some(m) = self.migrate_node_hinted(tree, src, dst, hint)? {
                    moved += 1;
                    t.live += 1;
                    if m.pristine {
                        patch_hints(hints.values_mut(), &layout, src, &m);
                    } else {
                        // The success rescanned: sibling hints may miss
                        // referencers it wrote. Fall back to per-node
                        // scans for the rest of this pass.
                        hints.clear();
                    }
                }
            }
        }
        // Live slots kept appearing for 64 passes: a writer is racing the
        // drain faster than we migrate.
        Err(Error::TooManyRetries { attempts: 64 })
    }
}

/// After one migration in a batch commits, brings the remaining victims'
/// hints up to the commit's instant: a referencer that was itself the
/// migrated node moved to its new slot, and every object the commit
/// wrote carries a newly installed seqno. (The swap changes no *other*
/// membership in sibling referencer sets — it only rewrites pointers
/// inside existing referencers — so patching pointers and seqnos keeps
/// each hint exactly the referencer set as of the commit.)
fn patch_hints<'a>(
    hints: impl Iterator<Item = &'a mut RefScan>,
    layout: &crate::layout::Layout,
    moved_from: NodePtr,
    moved: &Moved,
) {
    let find = |key: TxKey| {
        moved
            .installed
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| *s)
    };
    for rs in hints {
        for (ptr, seq) in rs.nodes.iter_mut() {
            if *ptr == moved_from {
                *ptr = moved.to;
            }
            if let Some(s) = find(TxKey::Plain(layout.node_obj(*ptr))) {
                *seq = s;
            }
        }
        for (sid, _, seq) in rs.cats.iter_mut() {
            if let Some(repl) = layout.catalog_entry(*sid) {
                if let Some(s) = find(TxKey::Repl(repl)) {
                    *seq = s;
                }
            }
        }
        if let Some(seq) = rs.tip.as_mut() {
            if let Some(s) = find(TxKey::Repl(layout.tip())) {
                *seq = s;
            }
        }
    }
}

/// Rewrites every reference to `old` in `node` to `new`; returns whether
/// anything changed.
fn swap_references(node: &mut Node, old: NodePtr, new: NodePtr) -> bool {
    let mut changed = false;
    if let crate::node::NodeBody::Internal { kids, .. } = &mut node.body {
        for k in kids.iter_mut() {
            if *k == old {
                *k = new;
                changed = true;
            }
        }
    }
    for d in node.desc.iter_mut() {
        if d.ptr == old {
            d.ptr = new;
            changed = true;
        }
    }
    changed
}

/// Slots of `mem` currently holding a decodable node (raw scan).
fn live_slots(mc: &MinuetCluster, tree: u32, mem: MemNodeId) -> Result<Vec<u32>, Error> {
    let layout = *mc.layout(tree);
    let mut out = Vec::new();
    crate::stats::scan_slots(&mc.sinfonia, &layout, mem, &mut |slot, val| {
        if Node::decode(&val.data).is_ok() {
            out.push(slot);
        }
    })?;
    Ok(out)
}

/// Occupancy of every memnode eligible as a migration target (seeded,
/// not retiring, not `exclude`), least-loaded first.
fn eligible_targets(
    mc: &MinuetCluster,
    tree: u32,
    exclude: MemNodeId,
) -> Result<Vec<MemOccupancy>, Error> {
    let mut occ: Vec<MemOccupancy> = occupancy(mc, tree)?
        .into_iter()
        .filter(|o| o.mem != exclude && !o.retiring && !mc.sinfonia.node(o.mem).is_joining())
        .collect();
    occ.sort_by_key(|o| o.live);
    Ok(occ)
}

/// Report of one [`MinuetCluster::rebalance`] invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Nodes migrated.
    pub moved: u64,
    /// Rebalance rounds executed.
    pub rounds: u32,
}

/// Occupancy-driven rebalancing policy: drains memnodes whose live-slot
/// count exceeds the mean (over eligible memnodes) by more than
/// `tolerance`, toward the under-loaded ones, until the spread is within
/// tolerance or the move budget runs out.
#[derive(Debug, Clone, Copy)]
pub struct Rebalancer {
    /// Acceptable relative deviation from the mean (e.g. `0.15` = 15 %).
    pub tolerance: f64,
    /// Upper bound on migrations per invocation.
    pub max_moves: u64,
    /// Upper bound on scan/plan/migrate rounds.
    pub max_rounds: u32,
}

impl Default for Rebalancer {
    fn default() -> Self {
        Rebalancer {
            tolerance: 0.15,
            max_moves: u64::MAX,
            max_rounds: 16,
        }
    }
}

impl Rebalancer {
    /// Runs the policy on one tree through `proxy`.
    pub fn run(&self, proxy: &mut Proxy, tree: u32) -> Result<RebalanceReport, Error> {
        let mc = proxy.cluster().clone();
        let mut report = RebalanceReport::default();
        'rounds: for _ in 0..self.max_rounds {
            let occ: Vec<MemOccupancy> = occupancy(&mc, tree)?
                .into_iter()
                .filter(|o| !o.retiring && !mc.sinfonia.node(o.mem).is_joining())
                .collect();
            if occ.len() < 2 {
                return Ok(report);
            }
            let total: u64 = occ.iter().map(|o| o.live as u64).sum();
            let mean = total as f64 / occ.len() as f64;
            let high = mean * (1.0 + self.tolerance);
            let mut donors: Vec<&MemOccupancy> =
                occ.iter().filter(|o| (o.live as f64) > high).collect();
            if donors.is_empty() {
                break;
            }
            donors.sort_by_key(|o| std::cmp::Reverse(o.live));
            let mut takers: Vec<(MemNodeId, i64)> = occ
                .iter()
                .filter(|o| (o.live as f64) < mean)
                .map(|o| (o.mem, (mean - o.live as f64).floor() as i64))
                .collect();
            report.rounds += 1;

            let layout = *mc.layout(tree);
            for donor in donors {
                let surplus = (donor.live as f64 - mean).ceil() as usize;
                let mut victims: Vec<NodePtr> = live_slots(&mc, tree, donor.mem)?
                    .into_iter()
                    .map(|slot| NodePtr {
                        mem: donor.mem,
                        slot,
                    })
                    .collect();
                victims.truncate(surplus);
                // One referencer sweep per donor batch (see drain()).
                let mut hints = proxy.scan_referencers_many(tree, &victims)?;
                for src in victims {
                    let Some(t) = takers.iter_mut().find(|(_, room)| *room > 0) else {
                        break;
                    };
                    let dst = t.0;
                    if report.moved >= self.max_moves {
                        break 'rounds;
                    }
                    let hint = hints.remove(&src);
                    if let Some(m) = proxy.migrate_node_hinted(tree, src, dst, hint)? {
                        report.moved += 1;
                        t.1 -= 1;
                        if m.pristine {
                            patch_hints(hints.values_mut(), &layout, src, &m);
                        } else {
                            hints.clear(); // see drain(): rescan the rest
                        }
                    }
                }
            }
        }
        Ok(report)
    }
}

impl MinuetCluster {
    /// Rebalances every tree's slot occupancy across the cluster with the
    /// default [`Rebalancer`] policy. Run this after
    /// [`MinuetCluster::add_memnode`] so existing load shifts onto the
    /// new node instead of only absorbing future allocations.
    pub fn rebalance(self: &Arc<Self>) -> Result<RebalanceReport, Error> {
        let policy = Rebalancer::default();
        let mut proxy = self.proxy();
        let mut total = RebalanceReport::default();
        for tree in 0..self.n_trees() as u32 {
            let r = policy.run(&mut proxy, tree)?;
            total.moved += r.moved;
            total.rounds += r.rounds;
        }
        Ok(total)
    }

    /// Decommissions `mem`: marks it retiring and migrates every live
    /// node of every tree off it. Returns the total nodes moved. After
    /// this returns, the memnode holds zero live slots (for each tree)
    /// and receives no new allocations.
    pub fn drain(self: &Arc<Self>, mem: MemNodeId) -> Result<u64, Error> {
        let mut proxy = self.proxy();
        let mut moved = 0;
        for tree in 0..self.n_trees() as u32 {
            moved += proxy.drain(tree, mem)?;
        }
        Ok(moved)
    }
}
