//! Range scans (§4, §6.3).
//!
//! Scans over read-only snapshots are the paper's headline analytics
//! mechanism: they dirty-read every node (leaves included) guarded by
//! fence-key and version checks, so they never validate and never abort
//! due to concurrent updates.
//!
//! A strictly-serializable scan over the *tip* is also provided
//! (`scan_serializable`): it accumulates every visited leaf in one dynamic
//! transaction's read set, and — exactly as §6.3 warns — may effectively
//! never commit under a concurrent update load. The `ablation_scan`
//! bench quantifies this.

use crate::error::{attempt, Attempt, Error};
use crate::key::{Fence, Key, Value};
use crate::node::{NodeBody, SnapshotId};
use crate::proxy::{OpTarget, Proxy};
use crate::traverse::LeafAccess;

/// Collects from a leaf all entries with `key >= from`, appending to
/// `out`. Returns the leaf's high fence.
fn collect(leaf: &crate::node::Node, from: &[u8], out: &mut Vec<(Key, Value)>) -> Fence {
    if let NodeBody::Leaf { entries } = &leaf.body {
        let start = entries.partition_point(|(k, _)| k.as_slice() < from);
        out.extend(entries[start..].iter().cloned());
    }
    leaf.high.clone()
}

impl Proxy {
    /// Scans up to `limit` key/value pairs starting at `start` (inclusive)
    /// from snapshot `sid`. One attempt per leaf; reads are dirty and never
    /// validated (§4.2), so concurrent updates cannot abort the scan.
    pub fn scan_at(
        &mut self,
        tree: u32,
        sid: SnapshotId,
        start: &[u8],
        limit: usize,
    ) -> Result<Vec<(Key, Value)>, Error> {
        let mut out: Vec<(Key, Value)> = Vec::new();
        let mut cur: Key = start.to_vec();
        loop {
            let remaining = limit - out.len();
            if remaining == 0 {
                break;
            }
            let cur_key = cur.clone();
            let budget = self.mc.cfg.max_op_retries.min(500);
            let (mut batch, high) = self.run_op_budget(tree, budget, move |p, tx| {
                let ctx = attempt!(p.resolve(tx, tree, OpTarget::Snapshot(sid))?);
                let path = attempt!(p.traverse(tx, tree, &ctx, &cur_key, LeafAccess::Dirty, 0)?);
                let leaf = &path.last().unwrap().node;
                let mut batch = Vec::new();
                let high = collect(leaf, &cur_key, &mut batch);
                Ok(Attempt::Done((batch, high)))
            })?;
            batch.truncate(remaining);
            out.append(&mut batch);
            match high {
                Fence::PosInf => break,
                Fence::Key(k) => cur = k,
                Fence::NegInf => unreachable!("leaf high fence cannot be -inf"),
            }
        }
        Ok(out)
    }

    /// Strictly-serializable scan over the mainline tip *without* a
    /// snapshot: every visited leaf joins the read set and is validated at
    /// commit. Under write contention this aborts (and retries) with
    /// probability growing in the scan length — the behaviour that
    /// motivates snapshot scans (§6.3).
    pub fn scan_serializable(
        &mut self,
        tree: u32,
        start: &[u8],
        limit: usize,
    ) -> Result<Vec<(Key, Value)>, Error> {
        self.run_op(tree, |p, tx| {
            let ctx = attempt!(p.resolve(tx, tree, OpTarget::MainlineTip)?);
            let mut out: Vec<(Key, Value)> = Vec::new();
            let mut cur: Key = start.to_vec();
            loop {
                let path =
                    attempt!(p.traverse(tx, tree, &ctx, &cur, LeafAccess::Transactional, 0)?);
                let leaf = &path.last().unwrap().node;
                let high = collect(leaf, &cur, &mut out);
                if out.len() >= limit {
                    out.truncate(limit);
                    return Ok(Attempt::Done(out));
                }
                match high {
                    Fence::PosInf => return Ok(Attempt::Done(out)),
                    Fence::Key(k) => cur = k,
                    Fence::NegInf => unreachable!(),
                }
            }
        })
    }

    /// Convenience: scan the current tip through a fresh snapshot created
    /// via the snapshot service (strictly serializable; §6.3's default
    /// configuration with `k = 0`).
    pub fn scan_with_snapshot(
        &mut self,
        tree: u32,
        start: &[u8],
        limit: usize,
    ) -> Result<Vec<(Key, Value)>, Error> {
        let mc = self.mc.clone();
        let (sid, _root) = mc.shared(tree).scs.create(self, tree)?;
        self.scan_at(tree, sid, start, limit)
    }
}
