//! The Snapshot Creation Service with borrowed snapshots (Figure 7, §4.3)
//! and the minimum-time-between-snapshots staleness policy (§6.3).
//!
//! Snapshot creation engages every memnode (the replicated tip id and root
//! location must be updated atomically), so the service (a) serializes
//! creations through one critical section, and (b) lets a request *borrow*
//! the snapshot created by a concurrent request whenever doing so
//! preserves strict serializability: if a snapshot was created entirely
//! within the waiting period of a queued request, it reflects a state of
//! affairs during that request, so returning it is correct.

use crate::error::Error;
use crate::node::{NodePtr, SnapshotId};
use crate::proxy::Proxy;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[derive(Clone, Copy)]
struct LastSnapshot {
    sid: SnapshotId,
    root: NodePtr,
    created_at: Instant,
}

/// Counters exposed for tests and benches.
#[derive(Debug, Default)]
pub struct ScsStats {
    /// Requests served by creating a fresh snapshot.
    pub created: AtomicU64,
    /// Requests served by borrowing (Fig. 7's fast path).
    pub borrowed: AtomicU64,
    /// Requests served stale under the k-staleness policy (§6.3).
    pub reused_stale: AtomicU64,
}

/// Snapshot creation service; one per tree, shared by all proxies
/// ("all proxies should route snapshot requests to the same server").
pub struct SnapshotService {
    state: Mutex<Option<LastSnapshot>>,
    num_snapshots: AtomicU64,
    borrowing: AtomicBool,
    /// Counters.
    pub stats: ScsStats,
}

impl Default for SnapshotService {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotService {
    /// Creates the service with borrowing enabled.
    pub fn new() -> Self {
        SnapshotService {
            state: Mutex::new(None),
            num_snapshots: AtomicU64::new(0),
            borrowing: AtomicBool::new(true),
            stats: ScsStats::default(),
        }
    }

    /// Enables/disables borrowing (the Fig. 15 ablation).
    pub fn set_borrowing(&self, on: bool) {
        self.borrowing.store(on, Ordering::Relaxed);
    }

    /// Requests a read-only snapshot, borrowing a concurrently-created one
    /// when strict serializability allows (Figure 7).
    pub fn create(&self, proxy: &mut Proxy, tree: u32) -> Result<(SnapshotId, NodePtr), Error> {
        // Fig. 7 line 1: read the counter before entering the critical
        // section.
        let tmp1 = self.num_snapshots.load(Ordering::SeqCst);
        let mut guard = self.state.lock();
        let tmp2 = self.num_snapshots.load(Ordering::SeqCst);
        let can_borrow = self.borrowing.load(Ordering::Relaxed) && tmp2 >= tmp1 + 2;
        if can_borrow {
            // Some other request started *and finished* a creation while we
            // were waiting: its snapshot reflects a moment within our
            // request window. Borrow it.
            let last = guard.expect("counter >= 2 implies a stored snapshot");
            self.stats.borrowed.fetch_add(1, Ordering::Relaxed);
            return Ok((last.sid, last.root));
        }
        let info = proxy.create_snapshot(tree)?;
        *guard = Some(LastSnapshot {
            sid: info.frozen_sid,
            root: info.frozen_root,
            created_at: Instant::now(),
        });
        self.num_snapshots.fetch_add(1, Ordering::SeqCst);
        self.stats.created.fetch_add(1, Ordering::Relaxed);
        Ok((info.frozen_sid, info.frozen_root))
    }

    /// Requests a snapshot for a scan under the k-staleness policy: if a
    /// snapshot younger than `k` exists, reuse it (sacrificing strict
    /// serializability for ordinary serializability, §6.3); otherwise
    /// create one.
    pub fn snapshot_for_scan(
        &self,
        proxy: &mut Proxy,
        tree: u32,
        k: Duration,
    ) -> Result<(SnapshotId, NodePtr), Error> {
        if !k.is_zero() {
            let guard = self.state.lock();
            if let Some(last) = *guard {
                if last.created_at.elapsed() < k {
                    self.stats.reused_stale.fetch_add(1, Ordering::Relaxed);
                    return Ok((last.sid, last.root));
                }
            }
        }
        self.create(proxy, tree)
    }

    /// Total snapshots created through this service.
    pub fn snapshots_created(&self) -> u64 {
        self.num_snapshots.load(Ordering::SeqCst)
    }
}
