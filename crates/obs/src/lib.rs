//! # minuet-obs
//!
//! The observability plane shared by every layer of the Minuet stack:
//!
//! - [`hist`]: the log-linear latency [`Histogram`] (promoted from the
//!   workload crate so the server side can use it too) and its
//!   [`LatencySummary`].
//! - [`registry`]: a unified [`Registry`] of named [`Counter`]s and
//!   [`HistHandle`]s. Subsystems keep their own cheap atomic handles and
//!   *register* them, so one [`Registry::snapshot`] call yields every
//!   metric of a process — memnode commit counters, WAL fsync latency,
//!   per-RPC wire latency/size distributions, transport byte totals.
//! - [`trace`]: lightweight request spans. A sampled tree operation
//!   activates a thread-local trace; [`span`] guards dropped along the
//!   way (client route/fetch/commit, server lock-wait/exec/WAL/fsync)
//!   record into it, and the finished trace lands in a bounded buffer on
//!   the [`ObsPlane`]. When sampling is off the hot path pays one
//!   thread-local flag read per would-be span and allocates nothing.
//!
//! The crate sits at the bottom of the dependency stack (below
//! `minuet-sinfonia`), deliberately knows nothing about wire formats or
//! B-trees, and encodes its snapshot/trace types to plain byte vectors so
//! the wire layer can ship them opaquely.

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, LatencySummary};
pub use registry::{Counter, HistHandle, ObsSnapshot, Registry};
pub use trace::{
    absorb_spans, current_ctx, event, note, span, span_tagged, tracing_active, with_server_trace,
    ObsConfig, ObsPlane, OpGuard, SpanGuard, SpanKind, SpanRecord, Trace, TraceCtx,
};
