//! Request spans: per-operation traces with near-zero cost when off.
//!
//! ## Model
//!
//! A *trace* covers one tree operation. The [`ObsPlane`]'s head-based
//! sampler decides at operation start whether this op is traced
//! ([`ObsPlane::op`]); if so, a thread-local trace is armed and every
//! [`span`] guard dropped on that thread until the op ends records a
//! [`SpanRecord`] (kind, optional RPC tag, depth in the span tree, start
//! offset and duration in nanoseconds). The finished [`Trace`] lands in a
//! bounded drop-oldest buffer on the plane; traces whose total exceeds the
//! configured slow-op threshold additionally land in a separate slow-op
//! buffer (and are rendered to stderr when `MINUET_OBS_LOG_SLOW=1`).
//!
//! ## Propagation
//!
//! Within a process the trace is ambient: the proxy, the dynamic
//! transaction layer, and the in-process memnode all run on the operating
//! thread, so their spans stitch automatically. Across the wire the client
//! reads [`current_ctx`] and wraps the request in a `Traced` envelope; the
//! server arms its own thread with [`with_server_trace`], runs the
//! request, and returns its spans in the reply, which the client grafts
//! back into the ambient trace with [`absorb_spans`]. Server span start
//! offsets are relative to the server's arming instant (clocks are not
//! synchronized); durations are directly comparable.
//!
//! ## Sampling invariant
//!
//! With sampling off (`sample_every == 0`, the default) an operation costs
//! one atomic load at the op boundary and each would-be span one
//! thread-local flag read — no allocation, no branches beyond the flag
//! test. Benchmarks hold the hot path to within noise of the pre-tracing
//! build (see BENCHMARKS.md).

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hard cap on spans per trace: a retry storm cannot grow a trace without
/// bound. Further spans are dropped (the trace notes how many).
pub const MAX_TRACE_SPANS: usize = 512;

/// What a span measures. Client-side kinds cover the proxy/dyntx/transport
/// stack; `Srv*` kinds are recorded on the memnode (in-process or behind
/// the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// A whole tree operation (the trace root; implicit in
    /// [`Trace::total_ns`]).
    Op = 1,
    /// Proxy route resolution: tip/catalog lookup plus cached traversal.
    Route = 2,
    /// A dyntx object fetch (one minitransaction round trip).
    Fetch = 3,
    /// Commit-time validation + apply (the commit minitransaction).
    Commit = 4,
    /// An optimistic retry boundary (zero-duration event; `tag` is the
    /// retry cause).
    Retry = 5,
    /// Client-side retry backoff sleep.
    Backoff = 6,
    /// One wire request/response exchange, socket write to decoded reply
    /// (`tag` is the request tag).
    Rtt = 7,
    /// Wire frame encode/decode on the client.
    Framing = 8,
    /// Server-side request decode.
    SrvDecode = 9,
    /// Server-side lock acquisition (queueing + grant).
    SrvLockWait = 10,
    /// Server-side minitransaction execution (compare/read/write apply).
    SrvExec = 11,
    /// Server-side WAL record append.
    SrvWalAppend = 12,
    /// Server-side WAL durability wait (fsync or group-commit wait).
    SrvFsync = 13,
    /// Server-side response encode.
    SrvEncode = 14,
    /// Client-side tree descent: the walk from root to leaf, cache hits
    /// and misses alike (object fetches nest inside).
    Traverse = 15,
    /// Client-side mutation compute: cloning the leaf, applying the
    /// update, and staging the resulting node images (encode + CoW/split
    /// bookkeeping).
    Apply = 16,
    /// Client-side wait for an epoch-batched commit: from enrollment in
    /// the epoch to the group decision landing (the amortized-validation
    /// window).
    EpochWait = 17,
    /// Server-side incorporation of a replicated log-stream chunk.
    ReplApply = 18,
}

impl SpanKind {
    /// Decodes a kind byte.
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            1 => SpanKind::Op,
            2 => SpanKind::Route,
            3 => SpanKind::Fetch,
            4 => SpanKind::Commit,
            5 => SpanKind::Retry,
            6 => SpanKind::Backoff,
            7 => SpanKind::Rtt,
            8 => SpanKind::Framing,
            9 => SpanKind::SrvDecode,
            10 => SpanKind::SrvLockWait,
            11 => SpanKind::SrvExec,
            12 => SpanKind::SrvWalAppend,
            13 => SpanKind::SrvFsync,
            14 => SpanKind::SrvEncode,
            15 => SpanKind::Traverse,
            16 => SpanKind::Apply,
            17 => SpanKind::EpochWait,
            18 => SpanKind::ReplApply,
            _ => return None,
        })
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Op => "op",
            SpanKind::Route => "route",
            SpanKind::Fetch => "fetch",
            SpanKind::Commit => "commit",
            SpanKind::Retry => "retry",
            SpanKind::Backoff => "backoff",
            SpanKind::Rtt => "rtt",
            SpanKind::Framing => "framing",
            SpanKind::SrvDecode => "srv.decode",
            SpanKind::SrvLockWait => "srv.lock_wait",
            SpanKind::SrvExec => "srv.exec",
            SpanKind::SrvWalAppend => "srv.wal_append",
            SpanKind::SrvFsync => "srv.fsync",
            SpanKind::SrvEncode => "srv.encode",
            SpanKind::Traverse => "traverse",
            SpanKind::Apply => "apply",
            SpanKind::EpochWait => "epoch.wait",
            SpanKind::ReplApply => "srv.repl_apply",
        }
    }
}

/// One recorded span. 19 bytes on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// [`SpanKind`] as a byte (kept raw so unknown kinds survive mixed
    /// versions in dumps).
    pub kind: u8,
    /// Kind-specific tag: the wire request tag for `Rtt`, the retry cause
    /// for `Retry`, zero otherwise.
    pub tag: u8,
    /// Depth in the span tree (children of the op root are depth 1).
    pub depth: u8,
    /// Start offset from the trace (or server arming) instant, ns.
    pub start_ns: u64,
    /// Duration, ns (zero for events).
    pub dur_ns: u64,
}

impl SpanRecord {
    /// Appends the 19-byte wire form.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        out.push(self.tag);
        out.push(self.depth);
        out.extend_from_slice(&self.start_ns.to_le_bytes());
        out.extend_from_slice(&self.dur_ns.to_le_bytes());
    }

    /// Decodes one record from `buf[pos..]`, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Option<SpanRecord> {
        if buf.len() - *pos < 19 {
            return None;
        }
        let b = &buf[*pos..*pos + 19];
        *pos += 19;
        Some(SpanRecord {
            kind: b[0],
            tag: b[1],
            depth: b[2],
            start_ns: u64::from_le_bytes(b[3..11].try_into().unwrap()),
            dur_ns: u64::from_le_bytes(b[11..19].try_into().unwrap()),
        })
    }

    /// The kind, if known.
    pub fn kind(&self) -> Option<SpanKind> {
        SpanKind::from_u8(self.kind)
    }
}

/// A finished trace: one operation's span tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Sampler-assigned id (carried across the wire for stitching).
    pub trace_id: u64,
    /// Caller-defined root operation tag (tree-op or RPC kind).
    pub op_tag: u8,
    /// End-to-end duration of the operation, ns.
    pub total_ns: u64,
    /// Spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped past [`MAX_TRACE_SPANS`].
    pub dropped: u32,
}

impl Trace {
    /// Serializes the trace.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.spans.len() * 19);
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.push(self.op_tag);
        out.extend_from_slice(&self.total_ns.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.spans.len() as u32).to_le_bytes());
        for s in &self.spans {
            s.encode_into(&mut out);
        }
        out
    }

    /// Decodes one trace from `buf[pos..]`, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Trace> {
        let need = |pos: usize, n: usize| buf.len().checked_sub(pos).is_some_and(|r| r >= n);
        if !need(*pos, 8 + 1 + 8 + 4 + 4) {
            return None;
        }
        let trace_id = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
        *pos += 8;
        let op_tag = buf[*pos];
        *pos += 1;
        let total_ns = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
        *pos += 8;
        let dropped = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
        *pos += 4;
        let n = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
        *pos += 4;
        if n > MAX_TRACE_SPANS {
            return None;
        }
        let mut spans = Vec::with_capacity(n);
        for _ in 0..n {
            spans.push(SpanRecord::decode_from(buf, pos)?);
        }
        Some(Trace {
            trace_id,
            op_tag,
            total_ns,
            spans,
            dropped,
        })
    }

    /// Serializes a list of traces (the `TraceDump` wire payload).
    pub fn encode_many(traces: &[Trace]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(traces.len() as u32).to_le_bytes());
        for t in traces {
            out.extend_from_slice(&t.encode());
        }
        out
    }

    /// Decodes a list of traces; `None` on structural corruption.
    pub fn decode_many(buf: &[u8]) -> Option<Vec<Trace>> {
        let mut pos = 0usize;
        if buf.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        pos += 4;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(Trace::decode_from(buf, &mut pos)?);
        }
        if pos != buf.len() {
            return None;
        }
        Some(out)
    }

    /// Renders the span tree as indented text (the slow-op log and the
    /// `minuet-stats` dashboard share this).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} op={} total {:.1}µs ({} spans{})",
            self.trace_id,
            self.op_tag,
            self.total_ns as f64 / 1e3,
            self.spans.len(),
            if self.dropped > 0 {
                format!(", {} dropped", self.dropped)
            } else {
                String::new()
            }
        );
        // Spans are stored in completion order; sort by start for reading.
        let mut spans: Vec<&SpanRecord> = self.spans.iter().collect();
        spans.sort_by_key(|s| (s.start_ns, s.depth));
        for s in spans {
            let name = s.kind().map(SpanKind::name).unwrap_or("?");
            let _ = writeln!(
                out,
                "  {:indent$}{name}{} +{:.1}µs {:.1}µs",
                "",
                if s.tag != 0 {
                    format!("[{:#04x}]", s.tag)
                } else {
                    String::new()
                },
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                indent = (s.depth as usize).saturating_sub(1) * 2,
            );
        }
        out
    }

    /// Sums durations of all spans of `kind`.
    pub fn kind_total_ns(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind as u8)
            .map(|s| s.dur_ns)
            .sum()
    }
}

/// A copy of the ambient trace identity, read by the wire client to build
/// the `Traced` envelope. No global state: the context is only reachable
/// from the thread executing the traced operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The active trace's id.
    pub trace_id: u64,
    /// Position the next span will take (a per-trace span id).
    pub span_id: u32,
    /// Always true for an armed context (the sampler already decided).
    pub sampled: bool,
}

struct ThreadTrace {
    trace_id: u64,
    start: Instant,
    depth: u8,
    spans: Vec<SpanRecord>,
    dropped: u32,
}

thread_local! {
    /// Fast flag consulted by every would-be span; the only cost when
    /// tracing is off.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TT: RefCell<Option<ThreadTrace>> = const { RefCell::new(None) };
}

fn arm(trace_id: u64) {
    TT.with(|t| {
        *t.borrow_mut() = Some(ThreadTrace {
            trace_id,
            start: Instant::now(),
            depth: 0,
            spans: Vec::with_capacity(32),
            dropped: 0,
        });
    });
    ACTIVE.with(|a| a.set(true));
}

fn disarm() -> Option<(u64, Vec<SpanRecord>, u32)> {
    ACTIVE.with(|a| a.set(false));
    TT.with(|t| {
        t.borrow_mut()
            .take()
            .map(|tt| (tt.trace_id, tt.spans, tt.dropped))
    })
}

/// True when the current thread has an armed trace.
#[inline]
pub fn tracing_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// The ambient trace identity, if this thread is tracing.
pub fn current_ctx() -> Option<TraceCtx> {
    if !tracing_active() {
        return None;
    }
    TT.with(|t| {
        t.borrow().as_ref().map(|tt| TraceCtx {
            trace_id: tt.trace_id,
            span_id: tt.spans.len() as u32,
            sampled: true,
        })
    })
}

/// An RAII span. Inert (no allocation, no clock read) when the thread is
/// not tracing.
pub struct SpanGuard {
    armed: Option<SpanStart>,
}

struct SpanStart {
    kind: u8,
    tag: u8,
    depth: u8,
    start: Instant,
    start_ns: u64,
}

/// Opens a span of `kind`; the span closes (and records) when the guard
/// drops.
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    span_tagged(kind, 0)
}

/// Opens a span with a kind-specific tag (e.g. the wire request tag).
#[inline]
pub fn span_tagged(kind: SpanKind, tag: u8) -> SpanGuard {
    if !tracing_active() {
        return SpanGuard { armed: None };
    }
    let (depth, start_ns) = TT.with(|t| {
        let mut b = t.borrow_mut();
        let tt = b.as_mut().expect("active implies armed");
        tt.depth = tt.depth.saturating_add(1);
        (tt.depth, tt.start.elapsed().as_nanos() as u64)
    });
    SpanGuard {
        armed: Some(SpanStart {
            kind: kind as u8,
            tag,
            depth,
            start: Instant::now(),
            start_ns,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.armed.take() {
            let dur_ns = s.start.elapsed().as_nanos() as u64;
            TT.with(|t| {
                let mut b = t.borrow_mut();
                if let Some(tt) = b.as_mut() {
                    tt.depth = tt.depth.saturating_sub(1);
                    let rec = SpanRecord {
                        kind: s.kind,
                        tag: s.tag,
                        depth: s.depth,
                        start_ns: s.start_ns,
                        dur_ns,
                    };
                    if tt.spans.len() < MAX_TRACE_SPANS {
                        tt.spans.push(rec);
                    } else {
                        tt.dropped += 1;
                    }
                }
            });
        }
    }
}

/// Records a zero-duration event (e.g. a retry boundary with its cause in
/// `tag`).
#[inline]
pub fn event(kind: SpanKind, tag: u8) {
    if !tracing_active() {
        return;
    }
    TT.with(|t| {
        let mut b = t.borrow_mut();
        if let Some(tt) = b.as_mut() {
            let rec = SpanRecord {
                kind: kind as u8,
                tag,
                depth: tt.depth + 1,
                start_ns: tt.start.elapsed().as_nanos() as u64,
                dur_ns: 0,
            };
            if tt.spans.len() < MAX_TRACE_SPANS {
                tt.spans.push(rec);
            } else {
                tt.dropped += 1;
            }
        }
    });
}

/// Records a span whose duration was measured externally (e.g. a decode
/// that finished before the trace could be armed).
#[inline]
pub fn note(kind: SpanKind, tag: u8, dur_ns: u64) {
    if !tracing_active() {
        return;
    }
    TT.with(|t| {
        let mut b = t.borrow_mut();
        if let Some(tt) = b.as_mut() {
            let start_ns = tt.start.elapsed().as_nanos() as u64;
            let rec = SpanRecord {
                kind: kind as u8,
                tag,
                depth: tt.depth + 1,
                start_ns: start_ns.saturating_sub(dur_ns),
                dur_ns,
            };
            if tt.spans.len() < MAX_TRACE_SPANS {
                tt.spans.push(rec);
            } else {
                tt.dropped += 1;
            }
        }
    });
}

/// Grafts spans returned by a remote server into the ambient trace,
/// nesting them one level below the current depth. Start offsets are kept
/// server-relative (durations are the comparable quantity).
pub fn absorb_spans(spans: &[SpanRecord]) {
    if !tracing_active() || spans.is_empty() {
        return;
    }
    TT.with(|t| {
        let mut b = t.borrow_mut();
        if let Some(tt) = b.as_mut() {
            let base = tt.depth + 1;
            for s in spans {
                let rec = SpanRecord {
                    depth: base.saturating_add(s.depth),
                    ..*s
                };
                if tt.spans.len() < MAX_TRACE_SPANS {
                    tt.spans.push(rec);
                } else {
                    tt.dropped += 1;
                }
            }
        }
    });
}

/// Arms the current (server) thread with trace `trace_id`, runs `f`, and
/// returns `f`'s result together with the spans recorded during it.
/// Panic-safe: the thread is disarmed even if `f` unwinds. If the thread
/// is already tracing (in-process transport: the client's ambient trace is
/// armed), `f` runs in that trace and no spans are returned separately.
pub fn with_server_trace<R>(trace_id: u64, f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    if tracing_active() {
        return (f(), Vec::new());
    }
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            let _ = disarm();
        }
    }
    arm(trace_id);
    let guard = Disarm;
    let r = f();
    std::mem::forget(guard);
    let (_, spans, _) = disarm().unwrap_or((0, Vec::new(), 0));
    (r, spans)
}

// ---------------------------------------------------------------------------
// The plane: sampler + bounded trace buffers + registry.
// ---------------------------------------------------------------------------

/// Observability configuration, carried by `ClusterConfig::obs` (client
/// side) and the daemon options (server side).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Head-based sampling rate: trace every Nth operation (`0` = off,
    /// the default; `1` = every op).
    pub sample_every: u64,
    /// Sampled operations slower than this land in the slow-op buffer
    /// (`0` = disabled).
    pub slow_op_ns: u64,
    /// Capacity of the trace and slow-op buffers (drop-oldest).
    pub trace_buffer: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sample_every: 0,
            slow_op_ns: 0,
            trace_buffer: 256,
        }
    }
}

impl ObsConfig {
    /// Tracing every `every`-th operation.
    pub fn sampled(every: u64) -> Self {
        ObsConfig {
            sample_every: every,
            ..Default::default()
        }
    }
}

/// The per-process observability plane: the metric [`crate::Registry`],
/// the head-based trace sampler, and the bounded trace / slow-op buffers.
pub struct ObsPlane {
    /// All registered metrics of this process/cluster.
    pub registry: crate::Registry,
    sample_every: AtomicU64,
    slow_op_ns: AtomicU64,
    cap: usize,
    next_op: AtomicU64,
    next_trace: AtomicU64,
    traces: Mutex<VecDeque<Trace>>,
    slow: Mutex<VecDeque<Trace>>,
}

impl ObsPlane {
    /// A plane with the given config.
    pub fn new(cfg: &ObsConfig) -> Arc<ObsPlane> {
        Arc::new(ObsPlane {
            registry: crate::Registry::new(),
            sample_every: AtomicU64::new(cfg.sample_every),
            slow_op_ns: AtomicU64::new(cfg.slow_op_ns),
            cap: cfg.trace_buffer.max(1),
            next_op: AtomicU64::new(0),
            next_trace: AtomicU64::new(0),
            traces: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
        })
    }

    /// A plane with sampling off (the registry still works).
    pub fn disabled() -> Arc<ObsPlane> {
        Self::new(&ObsConfig::default())
    }

    /// Current sampling rate (`0` = off).
    pub fn sampling(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Changes the sampling rate at runtime.
    pub fn set_sampling(&self, every: u64) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// Changes the slow-op threshold at runtime.
    pub fn set_slow_op_ns(&self, ns: u64) {
        self.slow_op_ns.store(ns, Ordering::Relaxed);
    }

    /// Operation boundary: decides (head-based) whether to trace this op.
    /// Returns a guard that finishes the trace on drop, or `None` when the
    /// op is unsampled (also when this thread is already inside a traced
    /// op — nested ops, e.g. batch fallbacks, join the outer trace).
    pub fn op(self: &Arc<Self>, op_tag: u8) -> Option<OpGuard> {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 || tracing_active() {
            return None;
        }
        let n = self.next_op.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(every) {
            return None;
        }
        let trace_id = self.next_trace.fetch_add(1, Ordering::Relaxed) + 1;
        arm(trace_id);
        Some(OpGuard {
            plane: self.clone(),
            op_tag,
            start: Instant::now(),
        })
    }

    /// Stores a finished trace (bounded, drop-oldest), mirroring it to the
    /// slow-op buffer when it exceeds the threshold.
    pub fn record(&self, trace: Trace) {
        let slow_at = self.slow_op_ns.load(Ordering::Relaxed);
        if slow_at > 0 && trace.total_ns >= slow_at {
            if std::env::var_os("MINUET_OBS_LOG_SLOW").is_some_and(|v| v == "1") {
                eprintln!("[obs] slow op:\n{}", trace.render());
            }
            let mut s = self.slow.lock();
            if s.len() == self.cap {
                s.pop_front();
            }
            s.push_back(trace.clone());
        }
        let mut t = self.traces.lock();
        if t.len() == self.cap {
            t.pop_front();
        }
        t.push_back(trace);
    }

    /// The most recent `max` traces, newest last.
    pub fn recent(&self, max: usize) -> Vec<Trace> {
        let t = self.traces.lock();
        t.iter().rev().take(max).rev().cloned().collect()
    }

    /// The most recent `max` slow ops, newest last.
    pub fn slow(&self, max: usize) -> Vec<Trace> {
        let s = self.slow.lock();
        s.iter().rev().take(max).rev().cloned().collect()
    }

    /// Number of buffered traces (bounded by the configured capacity).
    pub fn trace_count(&self) -> usize {
        self.traces.lock().len()
    }
}

/// Root guard of a traced operation; finishes and stores the trace on
/// drop.
pub struct OpGuard {
    plane: Arc<ObsPlane>,
    op_tag: u8,
    start: Instant,
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        let total_ns = self.start.elapsed().as_nanos() as u64;
        if let Some((trace_id, spans, dropped)) = disarm() {
            self.plane.record(Trace {
                trace_id,
                op_tag: self.op_tag,
                total_ns,
                spans,
                dropped,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_inert_when_off() {
        assert!(!tracing_active());
        let g = span(SpanKind::Fetch);
        assert!(g.armed.is_none());
        drop(g);
        assert!(current_ctx().is_none());
        event(SpanKind::Retry, 1); // no-op, must not panic
    }

    #[test]
    fn sampled_op_collects_span_tree() {
        let plane = ObsPlane::new(&ObsConfig::sampled(1));
        {
            let _op = plane.op(7).expect("sampled");
            assert!(tracing_active());
            let ctx = current_ctx().unwrap();
            assert!(ctx.sampled);
            {
                let _route = span(SpanKind::Route);
                let _fetch = span_tagged(SpanKind::Rtt, 0x02);
            }
            event(SpanKind::Retry, 3);
        }
        assert!(!tracing_active());
        let traces = plane.recent(10);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.op_tag, 7);
        assert_eq!(t.spans.len(), 3);
        // Inner Rtt span closed first and is one level deeper.
        assert_eq!(t.spans[0].kind, SpanKind::Rtt as u8);
        assert_eq!(t.spans[0].tag, 0x02);
        assert_eq!(t.spans[0].depth, 2);
        assert_eq!(t.spans[1].kind, SpanKind::Route as u8);
        assert_eq!(t.spans[1].depth, 1);
        assert_eq!(t.spans[2].dur_ns, 0);
    }

    #[test]
    fn sampler_rate_and_nesting() {
        let plane = ObsPlane::new(&ObsConfig::sampled(3));
        let mut sampled = 0;
        for _ in 0..9 {
            if let Some(op) = plane.op(1) {
                // A nested op on the same thread joins the outer trace.
                assert!(plane.op(2).is_none());
                sampled += 1;
                drop(op);
            }
        }
        assert_eq!(sampled, 3);
        plane.set_sampling(0);
        assert!(plane.op(1).is_none());
    }

    #[test]
    fn buffers_are_bounded() {
        let plane = ObsPlane::new(&ObsConfig {
            sample_every: 1,
            slow_op_ns: 1, // everything is "slow"
            trace_buffer: 4,
        });
        for _ in 0..20 {
            let _op = plane.op(1);
        }
        assert_eq!(plane.trace_count(), 4);
        assert_eq!(plane.slow(100).len(), 4);
    }

    #[test]
    fn span_cap_drops_excess() {
        let plane = ObsPlane::new(&ObsConfig::sampled(1));
        {
            let _op = plane.op(1).unwrap();
            for _ in 0..(MAX_TRACE_SPANS + 10) {
                event(SpanKind::Retry, 0);
            }
        }
        let t = &plane.recent(1)[0];
        assert_eq!(t.spans.len(), MAX_TRACE_SPANS);
        assert_eq!(t.dropped, 10);
    }

    #[test]
    fn server_trace_collects_and_disarms() {
        let ((), spans) = with_server_trace(42, || {
            let _e = span(SpanKind::SrvExec);
        });
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::SrvExec as u8);
        assert!(!tracing_active());
        // Panic safety: the thread must be disarmed after an unwind.
        let r = std::panic::catch_unwind(|| {
            with_server_trace(43, || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(!tracing_active());
    }

    #[test]
    fn absorbed_spans_nest_below_current_depth() {
        let plane = ObsPlane::new(&ObsConfig::sampled(1));
        {
            let _op = plane.op(1).unwrap();
            let _rtt = span(SpanKind::Rtt);
            absorb_spans(&[SpanRecord {
                kind: SpanKind::SrvExec as u8,
                tag: 0,
                depth: 1,
                start_ns: 5,
                dur_ns: 9,
            }]);
        }
        let t = &plane.recent(1)[0];
        let srv = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::SrvExec as u8)
            .unwrap();
        // Rtt guard is depth 1 and open, so absorbed spans start at 2.
        assert_eq!(srv.depth, 3);
        assert_eq!(srv.dur_ns, 9);
    }

    #[test]
    fn trace_roundtrips_and_renders() {
        let t = Trace {
            trace_id: 9,
            op_tag: 2,
            total_ns: 123_456,
            spans: vec![
                SpanRecord {
                    kind: SpanKind::Fetch as u8,
                    tag: 0,
                    depth: 1,
                    start_ns: 10,
                    dur_ns: 100,
                },
                SpanRecord {
                    kind: SpanKind::Rtt as u8,
                    tag: 0x02,
                    depth: 2,
                    start_ns: 20,
                    dur_ns: 80,
                },
            ],
            dropped: 0,
        };
        let buf = Trace::encode_many(&[t.clone(), t.clone()]);
        let back = Trace::decode_many(&buf).expect("decodes");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], t);
        assert!(Trace::decode_many(&buf[..buf.len() - 1]).is_none());
        let txt = t.render();
        assert!(txt.contains("fetch"), "{txt}");
        assert!(txt.contains("rtt[0x02]"), "{txt}");
        assert_eq!(t.kind_total_ns(SpanKind::Rtt), 80);
    }
}
