//! A unified registry of named counters and histograms.
//!
//! Subsystems keep cheap shared handles ([`Counter`], [`HistHandle`]) on
//! their own structs — the hot path never touches the registry — and
//! *register* those handles under stable names. One [`Registry::snapshot`]
//! then yields every metric a process exports, and the snapshot encodes to
//! a plain byte vector so the wire layer can ship it without knowing the
//! schema.
//!
//! ## Ownership rules
//!
//! - The subsystem that *increments* a metric owns its handle; the
//!   registry holds a clone (same underlying atomic/histogram).
//! - Names are `dotted.paths` (`memnode.commits`, `wal.fsync_ns`,
//!   `wire.lat.exec_single`); registering an existing name *replaces* the
//!   registered handle (last adopter wins), and [`Registry::counter`] /
//!   [`Registry::histogram`] get-or-create so independent components can
//!   share one series by name.

use crate::hist::{Histogram, LatencySummary};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared monotonically increasing counter. Clones share the same
/// underlying atomic, so a subsystem handle and the registry see one
/// series. API-compatible with the bare `AtomicU64` fields it replaced
/// ([`Counter::load`] / [`Counter::fetch_add`] accept an `Ordering` and
/// ignore it: counters are statistics, relaxed is always correct).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// `AtomicU64`-compatible read (the ordering is ignored).
    #[inline]
    pub fn load(&self, _order: Ordering) -> u64 {
        self.get()
    }

    /// `AtomicU64`-compatible add (the ordering is ignored); returns the
    /// previous value.
    #[inline]
    pub fn fetch_add(&self, n: u64, _order: Ordering) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Resets to zero (tests and bench phase boundaries).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A shared histogram handle: a mutex-protected [`Histogram`] cheap enough
/// for microsecond-scale paths (one uncontended lock per record).
#[derive(Clone, Default)]
pub struct HistHandle(Arc<Mutex<Histogram>>);

impl std::fmt::Debug for HistHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.lock().fmt(f)
    }
}

impl HistHandle {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (nanoseconds, by convention, for latency series).
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.lock().record(v);
    }

    /// Records a duration.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.0.lock().record_duration(d);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.lock().count()
    }

    /// A point-in-time copy of the full histogram.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().clone()
    }

    /// Compact summary (count, mean, p50/p95/p99, max).
    pub fn summary(&self) -> LatencySummary {
        self.0.lock().summary()
    }
}

/// A process-wide snapshot of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` for every registered histogram.
    pub hists: Vec<(String, LatencySummary)>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).ok()
    }
}

impl ObsSnapshot {
    /// Serializes the snapshot to an opaque byte vector (shipped by the
    /// wire layer's `Obs` response without schema knowledge).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.counters.len() * 32 + self.hists.len() * 64);
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, v) in &self.counters {
            put_str(&mut out, name);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.hists.len() as u32).to_le_bytes());
        for (name, s) in &self.hists {
            put_str(&mut out, name);
            out.extend_from_slice(&s.count.to_le_bytes());
            out.extend_from_slice(&s.mean_ns.to_bits().to_le_bytes());
            out.extend_from_slice(&s.p50_ns.to_le_bytes());
            out.extend_from_slice(&s.p95_ns.to_le_bytes());
            out.extend_from_slice(&s.p99_ns.to_le_bytes());
            out.extend_from_slice(&s.max_ns.to_le_bytes());
        }
        out
    }

    /// Decodes a snapshot; `None` on any structural corruption.
    pub fn decode(buf: &[u8]) -> Option<ObsSnapshot> {
        let mut c = Cur { buf, pos: 0 };
        let nc = c.u32()? as usize;
        let mut counters = Vec::with_capacity(nc.min(4096));
        for _ in 0..nc {
            let name = c.str()?;
            counters.push((name, c.u64()?));
        }
        let nh = c.u32()? as usize;
        let mut hists = Vec::with_capacity(nh.min(4096));
        for _ in 0..nh {
            let name = c.str()?;
            let s = LatencySummary {
                count: c.u64()?,
                mean_ns: f64::from_bits(c.u64()?),
                p50_ns: c.u64()?,
                p95_ns: c.u64()?,
                p99_ns: c.u64()?,
                max_ns: c.u64()?,
            };
            hists.push((name, s));
        }
        if c.pos != buf.len() {
            return None;
        }
        Some(ObsSnapshot { counters, hists })
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<&LatencySummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// A named-metric registry; see the module docs for ownership rules.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    hists: Mutex<BTreeMap<String, HistHandle>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if absent.
    /// All callers asking for the same name share one series.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it if
    /// absent.
    pub fn histogram(&self, name: &str) -> HistHandle {
        self.hists
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Adopts an existing counter handle under `name` (the subsystem keeps
    /// incrementing its own handle; snapshots see the same atomic).
    pub fn register_counter(&self, name: &str, c: &Counter) {
        self.counters.lock().insert(name.to_string(), c.clone());
    }

    /// Adopts an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, h: &HistHandle) {
        self.hists.lock().insert(name.to_string(), h.clone());
    }

    /// Every registered metric at one instant, sorted by name.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            hists: self
                .hists
                .lock()
                .iter()
                .map(|(n, h)| (n.clone(), h.summary()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_series() {
        let r = Registry::new();
        let a = r.counter("x.ops");
        let b = r.counter("x.ops");
        a.add(3);
        b.inc();
        assert_eq!(r.counter("x.ops").get(), 4);
        assert_eq!(a.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn register_adopts_existing_handle() {
        let r = Registry::new();
        let mine = Counter::new();
        mine.add(7);
        r.register_counter("adopted", &mine);
        mine.inc();
        assert_eq!(r.snapshot().counter("adopted"), Some(8));
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.counter("b").add(2);
        let h = r.histogram("lat");
        for i in 1..=100u64 {
            h.record(i * 1000);
        }
        let snap = r.snapshot();
        let decoded = ObsSnapshot::decode(&snap.encode()).expect("decodes");
        assert_eq!(decoded, snap);
        assert_eq!(decoded.counter("b"), Some(2));
        assert_eq!(decoded.hist("lat").unwrap().count, 100);
        assert!(ObsSnapshot::decode(&snap.encode()[1..]).is_none());
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.counter("z");
        r.counter("a");
        r.counter("m");
        let names: Vec<_> = r.snapshot().counters.into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
