//! Log-linear latency histogram (HDR-style bucketing).
//!
//! Values (nanoseconds) are bucketed with a fixed relative precision of
//! ~1.5% (64 sub-buckets per power of two), so recording is O(1),
//! memory is bounded, and percentiles are accurate enough for reporting
//! mean / p50 / p95 / p99 over millions of samples.
//!
//! Lives in `minuet-obs` (promoted from the workload crate) so both the
//! client-side drivers and the server-side metrics registry share one
//! bucketing scheme and summaries merge exactly.

/// Sub-bucket resolution (log2): 64 linear sub-buckets per octave.
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

/// Maximum representable value (~18 minutes in ns); larger values clamp.
const MAX_VALUE: u64 = 1 << 40;

fn bucket_index(v: u64) -> usize {
    let v = v.min(MAX_VALUE);
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let shift = msb - SUB_BITS as u64;
    let sub = (v >> shift) & (SUB - 1);
    ((msb - SUB_BITS as u64 + 1) * SUB + sub) as usize
}

fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let octave = idx / SUB - 1;
    let sub = idx % SUB;
    // Midpoint of the bucket.
    let base = (SUB + sub) << octave;
    let width = 1u64 << octave;
    base + width / 2
}

const NBUCKETS: usize = ((40 - SUB_BITS as usize + 1) + 1) * SUB as usize;

/// Worst-case relative error of the log-linear bucketing for values at or
/// above one octave (`v >= 64`): half a bucket width over the bucket base.
/// Values below 64 are exact. Property tests assert this bound.
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

/// A mergeable latency histogram.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("p50", &self.percentile(50.0))
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one value (nanoseconds).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Records a [`std::time::Duration`].
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in nanoseconds.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at percentile `p` in `[0, 100]`, in nanoseconds.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Compact summary of this histogram.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean_ns: self.mean(),
            p50_ns: self.percentile(50.0),
            p95_ns: self.percentile(95.0),
            p99_ns: self.percentile(99.0),
            max_ns: self.max(),
        }
    }
}

/// Summary statistics of a latency distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples.
    pub count: u64,
    /// Mean (ns).
    pub mean_ns: f64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns) — the paper's headline latency metric.
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl LatencySummary {
    /// Mean in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }

    /// p95 in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.p95_ns as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 3);
        assert!((h.mean() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn relative_precision_on_large_values() {
        let mut h = Histogram::new();
        h.record(1_000_000); // 1ms in ns
        let p = h.percentile(99.0);
        let err = (p as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err < 0.02, "bucketing error {err}");
    }

    #[test]
    fn percentile_ordering() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99);
        let err50 = (p50 as f64 - 500_000.0).abs() / 500_000.0;
        let err95 = (p95 as f64 - 950_000.0).abs() / 950_000.0;
        assert!(err50 < 0.03, "p50 {p50}");
        assert!(err95 < 0.03, "p95 {p95}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..1000u64 {
            a.record(i);
            b.record(i + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert_eq!(a.max(), 1999);
        let p50 = a.percentile(50.0) as f64;
        assert!((p50 - 1000.0).abs() / 1000.0 < 0.03);
    }

    #[test]
    fn empty_histogram_safe() {
        let h = Histogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn bucket_roundtrip_monotone() {
        let mut prev = 0;
        for v in (0..1 << 20).step_by(97) {
            let idx = bucket_index(v);
            assert!(idx >= prev || bucket_index(v) == prev, "monotone");
            prev = idx;
            let mid = bucket_value(idx);
            if v >= SUB {
                let err = (mid as f64 - v as f64).abs() / v as f64;
                assert!(err < 0.02, "v={v} mid={mid}");
            }
        }
    }
}
