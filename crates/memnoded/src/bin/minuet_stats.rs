//! `minuet-stats` — poll running memnode daemons and render a text
//! dashboard of their observability plane.
//!
//! Each endpoint is polled over the ordinary wire protocol with three
//! admin RPCs: `Stats` (the fixed `NodeStats` counters), `ObsSnapshot`
//! (every registered counter and histogram), and `TraceDump` (recent or
//! slow request traces recorded server-side).
//!
//! ```text
//! minuet-stats tcp:127.0.0.1:7400 1@tcp:127.0.0.1:7401
//! minuet-stats --once --traces 4 unix:/tmp/mem0.sock
//! minuet-stats --once --slow --traces 8 tcp:127.0.0.1:7400
//! ```
//!
//! Endpoints may be prefixed `N@` with the memnode id the daemon serves
//! (defaults to the argument's position); the id is only used for the
//! connectivity handshake.

use minuet_obs::{LatencySummary, Trace};
use minuet_sinfonia::wire::Endpoint;
use minuet_sinfonia::{MemNodeId, NodeRpc, RemoteNode, Transport, WireConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Target {
    label: String,
    node: RemoteNode,
    /// Kept so the client-side registry (circuit-breaker transitions,
    /// fail-fast rejections, byte counters) can be rendered alongside the
    /// node's own snapshot.
    transport: Arc<Transport>,
}

struct Args {
    targets: Vec<Target>,
    interval: Duration,
    once: bool,
    traces: u32,
    slow: bool,
}

const USAGE: &str =
    "minuet-stats [--interval SECS] [--once] [--traces N] [--slow] <[ID@]ENDPOINT>...

  ENDPOINT        tcp:HOST:PORT or unix:PATH of a running memnoded,
                  optionally prefixed ID@ with the memnode id it serves
                  (default: argument position)
  --interval      seconds between polls (default 2)
  --once          poll once and exit (for scripts and smoke tests)
  --traces        also dump up to N request traces per node (default 0)
  --slow          dump the slow-trace ring instead of the recent ring";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        targets: Vec::new(),
        interval: Duration::from_secs(2),
        once: false,
        traces: 0,
        slow: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--interval" => {
                let v = value("--interval")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("--interval {v}: not a number"))?;
                args.interval = Duration::from_secs(secs.max(1));
            }
            "--once" => args.once = true,
            "--traces" => {
                let v = value("--traces")?;
                args.traces = v
                    .parse()
                    .map_err(|_| format!("--traces {v}: not a number"))?;
            }
            "--slow" => args.slow = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            spec => {
                let (id, ep) = match spec.split_once('@') {
                    Some((id, ep)) if id.chars().all(|c| c.is_ascii_digit()) => {
                        let id: u16 = id.parse().map_err(|_| format!("{spec}: bad memnode id"))?;
                        (id, ep)
                    }
                    _ => (args.targets.len() as u16, spec),
                };
                let endpoint = Endpoint::parse(ep).map_err(|e| format!("{spec}: {e}"))?;
                // The transport only hosts the client-side byte counters;
                // zero modeled latency, real sockets.
                let transport = Arc::new(Transport::new_wire(Duration::ZERO, None));
                args.targets.push(Target {
                    label: spec.to_string(),
                    node: RemoteNode::new(
                        MemNodeId(id),
                        endpoint,
                        WireConfig::default(),
                        Arc::clone(&transport),
                    ),
                    transport,
                });
            }
        }
    }
    if args.targets.is_empty() {
        return Err(format!("at least one endpoint is required\n\n{USAGE}"));
    }
    Ok(args)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

fn render_hist(name: &str, s: &LatencySummary) -> String {
    format!(
        "  {name:<28} n={:<9} p50={:>9} p95={:>9} p99={:>9} max={:>9}  (µs)",
        s.count,
        fmt_us(s.p50_ns),
        fmt_us(s.p95_ns),
        fmt_us(s.p99_ns),
        fmt_us(s.max_ns),
    )
}

fn poll(t: &Target, traces: u32, slow: bool) {
    println!("== {} ==", t.label);
    if let Err(e) = t.node.hello() {
        println!("  unreachable: {e}");
        return;
    }
    let s = t.node.node_stats();
    println!(
        "  ops: single_commits={} prepares={} commits={} aborts={} busy={} \
         fastpath={}/{} in_doubt={}",
        s.single_commits,
        s.prepares,
        s.commits,
        s.aborts,
        s.busy,
        s.read_fastpath,
        s.read_fastpath + s.read_fastpath_misses,
        s.in_doubt,
    );
    println!(
        "  wal: appends={} bytes={} fsyncs={} retained={} checkpoints={} durable={}",
        s.wal_appends, s.wal_bytes, s.wal_fsyncs, s.wal_retained_bytes, s.checkpoints, s.durable,
    );
    let snap = t.node.obs_snapshot();
    if !snap.counters.is_empty() {
        println!("  counters:");
        for (name, v) in &snap.counters {
            println!("    {name:<28} {v}");
        }
    }
    if !snap.hists.is_empty() {
        println!("  histograms:");
        for (name, s) in &snap.hists {
            if s.count > 0 {
                println!("  {}", render_hist(name, s));
            }
        }
    }
    // Client-side view: breaker state transitions and fail-fast rejections
    // accumulate in this process's transport registry, not on the node.
    let local = t.transport.obs.registry.snapshot();
    let breaker: Vec<_> = local
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("wire.breaker."))
        .collect();
    if !breaker.is_empty() {
        println!("  breaker (client-side):");
        for (name, v) in breaker {
            println!("    {name:<28} {v}");
        }
    }
    if traces > 0 {
        let dump: Vec<Trace> = t.node.trace_dump(traces, slow);
        let ring = if slow { "slow" } else { "recent" };
        println!("  {ring} traces ({}):", dump.len());
        for tr in &dump {
            for line in tr.render().lines() {
                println!("    {line}");
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    loop {
        for t in &args.targets {
            poll(t, args.traces, args.slow);
        }
        if args.once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(args.interval);
        println!();
    }
}
