//! `memnoded` — the standalone memnode daemon.
//!
//! Serves one Sinfonia memnode over the binary wire protocol on a TCP or
//! Unix-socket endpoint, thread-per-connection with a bounded accept pool.
//! Coordinators connect with `ClusterConfig::with_wire_transport`.
//!
//! ```text
//! memnoded --listen unix:/tmp/mem0.sock --id 0 --capacity-mb 64
//! memnoded --listen tcp:127.0.0.1:7400 --id 1 --capacity-mb 256 \
//!          --dir /var/lib/minuet/mem1 --sync batch
//! ```
//!
//! With `--dir`, the memnode is durable: it reopens an existing
//! checkpoint + redo log in the directory (crash restart) or starts fresh,
//! and logs before applying. Without it, state is purely in memory.
//!
//! With `--follow <endpoint>`, the daemon is a **replication follower**:
//! besides serving its own endpoint, it continuously pulls the WAL stream
//! of the same-id memnode at the primary endpoint and applies it locally
//! (wire protocol v4 `ReplFetch`). The pull cursor is this node's durable
//! replication watermark, so restarting the follower resumes the stream
//! with no gaps and no duplicate applies.
//!
//! The process exits cleanly when a client sends the `Shutdown` RPC, or
//! on SIGTERM: the daemon stops accepting, lets in-flight requests finish
//! (every acked commit is already durable per the WAL contract), takes a
//! final checkpoint when durable, and exits 0.
//!
//! Fault injection: `--faults SPEC` (or the `MINUET_FAULTS` environment
//! variable) arms named failpoints at startup using the
//! `minuet_faults::apply_spec` grammar, and the `Faults` admin RPC re-arms
//! them at runtime — the chaos harness's remote control surface.

use minuet_sinfonia::wire::Endpoint;
use minuet_sinfonia::{
    DurabilityConfig, MemNode, MemNodeId, MemNodeServer, NodeRpc, RemoteNode, ServerOptions,
    SyncMode, Transport, WireConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: Endpoint,
    id: u16,
    capacity: u64,
    dir: Option<PathBuf>,
    sync: SyncMode,
    max_connections: usize,
    slow_us: u64,
    follow: Option<Endpoint>,
    follow_poll: Duration,
    faults: Option<String>,
}

const USAGE: &str = "memnoded --listen <tcp:HOST:PORT|unix:PATH> [--id N] [--capacity-mb MB]
         [--dir PATH] [--sync none|async|sync|group] [--max-connections N]
         [--slow-us US] [--follow ENDPOINT] [--follow-poll-ms MS]
         [--faults SPEC]

  --listen            endpoint to serve on (required)
  --id                memnode id this daemon serves (default 0)
  --capacity-mb       address-space capacity in MiB (default 256)
  --dir               durability directory; resumes existing state if present
  --sync              log sync mode when --dir is set (default async)
  --max-connections   bounded accept pool size (default 64)
  --slow-us           slow-op log threshold in microseconds: traced requests
                      slower than this are pinned in the slow-trace ring
                      (fetch with minuet-stats --slow; default 0 = off)
  --follow            run as a replication follower of the same-id memnode
                      served at this endpoint: pull its WAL stream and apply
                      it locally, resuming from the durable watermark
  --follow-poll-ms    sleep between pulls when caught up or the primary is
                      unreachable (default 2)
  --faults            arm fault-injection failpoints at startup, e.g.
                      'wal.fsync=err:count=3;wire.server.send=drop'
                      (also read from the MINUET_FAULTS env var; the
                      Faults admin RPC re-arms at runtime)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: Endpoint::Tcp(String::new()),
        id: 0,
        capacity: 256 << 20,
        dir: None,
        sync: SyncMode::Async,
        max_connections: ServerOptions::default().max_connections,
        slow_us: 0,
        follow: None,
        follow_poll: Duration::from_millis(2),
        faults: None,
    };
    let mut listen_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--listen" => {
                let v = value("--listen")?;
                args.listen = Endpoint::parse(&v).map_err(|e| format!("--listen {v}: {e}"))?;
                listen_set = true;
            }
            "--id" => {
                let v = value("--id")?;
                args.id = v.parse().map_err(|_| format!("--id {v}: not a u16"))?;
            }
            "--capacity-mb" => {
                let v = value("--capacity-mb")?;
                let mb: u64 = v
                    .parse()
                    .map_err(|_| format!("--capacity-mb {v}: not a number"))?;
                args.capacity = mb << 20;
            }
            "--dir" => args.dir = Some(PathBuf::from(value("--dir")?)),
            "--sync" => {
                args.sync = match value("--sync")?.as_str() {
                    "none" => SyncMode::None,
                    "async" => SyncMode::Async,
                    "sync" => SyncMode::Sync,
                    "group" => SyncMode::GroupCommit {
                        window: std::time::Duration::from_millis(1),
                    },
                    other => return Err(format!("--sync {other}: use none|async|sync|group")),
                }
            }
            "--max-connections" => {
                let v = value("--max-connections")?;
                args.max_connections = v
                    .parse()
                    .map_err(|_| format!("--max-connections {v}: not a number"))?;
            }
            "--slow-us" => {
                let v = value("--slow-us")?;
                args.slow_us = v
                    .parse()
                    .map_err(|_| format!("--slow-us {v}: not a number"))?;
            }
            "--follow" => {
                let v = value("--follow")?;
                args.follow = Some(Endpoint::parse(&v).map_err(|e| format!("--follow {v}: {e}"))?);
            }
            "--follow-poll-ms" => {
                let v = value("--follow-poll-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("--follow-poll-ms {v}: not a number"))?;
                args.follow_poll = Duration::from_millis(ms);
            }
            "--faults" => args.faults = Some(value("--faults")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if !listen_set {
        return Err(format!("--listen is required\n\n{USAGE}"));
    }
    Ok(args)
}

/// Set by the SIGTERM handler; polled by the shutdown watcher thread.
static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    // Only the async-signal-safe atomic store happens here; the watcher
    // thread does the actual shutdown work.
    SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    const SIGTERM: i32 = 15;
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn run(args: Args) -> std::io::Result<()> {
    // Arm startup failpoints before the node opens, so WAL/recovery paths
    // are already under fault coverage. The flag extends (or overrides
    // per-site) whatever MINUET_FAULTS armed.
    minuet_faults::init_from_env()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    if let Some(spec) = &args.faults {
        let armed = minuet_faults::apply_spec(spec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        eprintln!("memnoded: armed {armed} failpoint(s) from --faults");
    }
    let id = MemNodeId(args.id);
    let node = match &args.dir {
        Some(dir) => {
            let dcfg = DurabilityConfig {
                dir: Some(dir.clone()),
                sync: args.sync,
                ..Default::default()
            };
            let wal = minuet_sinfonia::recovery::wal_path(dir, id);
            if wal.exists() {
                let (node, meta, _) = MemNode::open_from_disk(id, args.capacity, &dcfg)?;
                let staged = meta.staged.len();
                if staged > 0 {
                    eprintln!(
                        "memnoded: {id} reopened with {staged} in-doubt transaction(s); \
                         a coordinator must resolve them"
                    );
                }
                node
            } else {
                MemNode::durable(id, args.capacity, &dcfg)?
            }
        }
        None => MemNode::new(id, args.capacity),
    };
    if args.slow_us > 0 {
        node.obs.set_slow_op_ns(args.slow_us * 1_000);
    }
    let opts = ServerOptions {
        max_connections: args.max_connections,
        ..Default::default()
    };
    let node = Arc::new(node);
    let follower = args
        .follow
        .as_ref()
        .map(|primary| spawn_follow_loop(&node, id, primary.clone(), args.follow_poll));
    let server = Arc::new(MemNodeServer::spawn(node, &args.listen, opts)?);
    install_sigterm_handler();
    // The watcher turns the SIGTERM flag into the same graceful shutdown a
    // client `Shutdown` RPC performs; it exits on its own once the server
    // stops for any reason.
    let watcher = {
        let server = server.clone();
        std::thread::Builder::new()
            .name("memnoded-sigterm".into())
            .spawn(move || loop {
                if SIGTERM_RECEIVED.load(Ordering::SeqCst) {
                    eprintln!("memnoded: SIGTERM, shutting down gracefully");
                    server.request_shutdown();
                    return;
                }
                if server.is_stopped() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            })
            .expect("spawning SIGTERM watcher failed")
    };
    eprintln!(
        "memnoded: serving {id} on {} (capacity {} MiB{}{})",
        args.listen,
        args.capacity >> 20,
        if args.dir.is_some() { ", durable" } else { "" },
        match &args.follow {
            Some(p) => format!(", following {p}"),
            None => String::new(),
        }
    );
    server.wait();
    let _ = watcher.join();
    if let Some((stop, handle)) = follower {
        stop.store(true, Ordering::Release);
        let _ = handle.join();
    }
    // Flush everything to disk before exiting: acked commits are already
    // durable (the WAL contract), and a final checkpoint persists the rest
    // so restart recovery starts from a fresh image. Failures (e.g. an
    // armed checkpoint failpoint) are reported but do not taint exit —
    // the WAL alone is sufficient for recovery.
    if args.dir.is_some() {
        if let Err(e) = server.node().checkpoint() {
            eprintln!("memnoded: final checkpoint failed: {e}");
        }
    }
    eprintln!("memnoded: {id} shutting down");
    Ok(())
}

/// Starts the follower pull loop: ask the local node for its durable
/// replication watermark, fetch the primary's WAL from there, apply. The
/// primary being down (or not yet up) is retried forever — the stream
/// resumes from the watermark whenever it returns.
fn spawn_follow_loop(
    node: &Arc<MemNode>,
    id: MemNodeId,
    primary: Endpoint,
    poll: Duration,
) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    const MAX_FETCH: u32 = 1 << 20;
    let stop = Arc::new(AtomicBool::new(false));
    let node = node.clone();
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name("memnoded-follow".into())
        .spawn(move || {
            let transport = Arc::new(Transport::new_wire(Duration::ZERO, None));
            let remote = RemoteNode::new(id, primary, WireConfig::default(), transport);
            while !stop2.load(Ordering::Acquire) {
                let Ok(status) = node.repl_status() else {
                    std::thread::sleep(poll);
                    continue;
                };
                let Ok(seg) = remote.wal_fetch(status.watermark, MAX_FETCH) else {
                    std::thread::sleep(poll);
                    continue;
                };
                if seg.bytes.is_empty() {
                    std::thread::sleep(poll);
                    continue;
                }
                let _ = node.repl_apply(seg.from, &seg.bytes);
            }
        })
        .expect("spawning follower thread failed");
    (stop, handle)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("memnoded: {e}");
            ExitCode::FAILURE
        }
    }
}
