//! Graceful-shutdown test against the real `memnoded` binary: SIGTERM
//! mid-write drains the daemon, flushes durable state, and exits 0 —
//! and a restart on the same directory serves every acked commit.

use minuet_sinfonia::wire::Endpoint;
use minuet_sinfonia::{
    ClusterConfig, ItemRange, MemNodeId, Minitransaction, NodeRpc, RemoteNode, SinfoniaCluster,
    Transport, WireConfig,
};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CAPACITY: u64 = 1 << 20;

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "memnoded-sigterm-{}-{tag}.sock",
        std::process::id()
    ))
}

fn spawn_daemon(ep: &Path, dir: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_memnoded"))
        .args([
            "--listen",
            &format!("unix:{}", ep.display()),
            "--dir",
            &dir.display().to_string(),
            "--sync",
            "sync",
            "--capacity-mb",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn memnoded")
}

fn wait_ready(ep: &Path) -> RemoteNode {
    let transport = Arc::new(Transport::new_wire(Duration::ZERO, None));
    let node = RemoteNode::new(
        MemNodeId(0),
        Endpoint::Unix(ep.to_path_buf()),
        WireConfig::default(),
        transport,
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while node.hello().is_err() {
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
    node
}

fn wire_cluster(ep: &Path) -> Arc<SinfoniaCluster> {
    SinfoniaCluster::new(
        ClusterConfig {
            capacity_per_node: CAPACITY,
            ..ClusterConfig::with_memnodes(1)
        }
        .with_wire_transport(vec![Endpoint::Unix(ep.to_path_buf())], WireConfig::default()),
    )
}

#[test]
fn sigterm_mid_write_loses_no_acked_commit_and_exits_zero() {
    let ep = sock("main");
    let dir = std::env::temp_dir().join(format!(
        "memnoded-sigterm-{}-{:x}",
        std::process::id(),
        0x51673u32
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut child = spawn_daemon(&ep, &dir);
    let _probe = wait_ready(&ep);
    let c = wire_cluster(&ep);

    // A writer hammers the daemon; everything it gets an ack for must
    // survive the SIGTERM.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut acked: Vec<u64> = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut m = Minitransaction::new();
                m.write(
                    ItemRange::new(MemNodeId(0), (i % 512) * 8, 8),
                    (i + 1).to_le_bytes().to_vec(),
                );
                match c.execute(&m) {
                    Ok(o) if o.committed() => acked.push(i),
                    _ => break, // the daemon is draining; stop cleanly
                }
                i += 1;
            }
            acked
        })
    };

    // SIGTERM mid-write, while the writer is in full flight.
    std::thread::sleep(Duration::from_millis(150));
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success(), "kill -TERM failed");

    // Graceful exit: status 0, within a drain timeout.
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(s) = child.try_wait().expect("try_wait") {
            break s;
        }
        assert!(Instant::now() < deadline, "daemon hung on SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "SIGTERM exit was not clean: {status}");

    stop.store(true, Ordering::Relaxed);
    let acked = writer.join().expect("writer panicked");
    assert!(!acked.is_empty(), "no write ever acked before the SIGTERM");

    // Restart on the same directory: every acked write must be there.
    let ep2 = sock("restart");
    let mut child2 = spawn_daemon(&ep2, &dir);
    let node2 = wait_ready(&ep2);
    let mut latest: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &i in &acked {
        latest.insert(i % 512, i + 1);
    }
    for (slot, want) in latest {
        let got = node2.raw_read(slot * 8, 8).expect("read after restart");
        assert_eq!(
            u64::from_le_bytes(got.try_into().unwrap()),
            want,
            "slot {slot}: acked write lost across SIGTERM"
        );
    }

    let _ = Command::new("kill")
        .args(["-TERM", &child2.id().to_string()])
        .status();
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&ep);
    let _ = std::fs::remove_file(&ep2);
}
