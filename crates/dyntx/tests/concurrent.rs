//! Concurrency tests for the dynamic transaction layer: OCC correctness
//! under real thread interleavings.

use minuet_dyntx::{DynTx, ObjRef, ReplRef, TxError};
use minuet_sinfonia::{ClusterConfig, MemNodeId, SinfoniaCluster};
use std::sync::Arc;

fn cluster(n: usize) -> Arc<SinfoniaCluster> {
    SinfoniaCluster::new(ClusterConfig {
        memnodes: n,
        capacity_per_node: 1 << 20,
        ..Default::default()
    })
}

/// Classic OCC counter: N threads increment one object; no lost updates.
#[test]
fn occ_counter_has_no_lost_updates() {
    let c = cluster(2);
    let obj = ObjRef::new(MemNodeId(0), 0, 64);
    {
        let mut t = DynTx::new(&c);
        t.write(obj, 0u64.to_le_bytes().to_vec());
        t.commit().unwrap();
    }
    let threads = 6;
    let per = 150u64;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let c = c.clone();
        handles.push(std::thread::spawn(move || {
            let mut aborts = 0u64;
            for _ in 0..per {
                loop {
                    let mut t = DynTx::new(&c);
                    let v = u64::from_le_bytes(t.read(obj).unwrap().try_into().unwrap());
                    t.write(obj, (v + 1).to_le_bytes().to_vec());
                    match t.commit() {
                        Ok(_) => break,
                        Err(TxError::Validation) => aborts += 1,
                        Err(e) => panic!("{e:?}"),
                    }
                }
            }
            aborts
        }));
    }
    let total_aborts: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let mut t = DynTx::new(&c);
    let v = u64::from_le_bytes(t.read(obj).unwrap().try_into().unwrap());
    assert_eq!(v, threads * per);
    // On a loaded host the threads may serialize and produce few or no
    // conflicts; when conflicts do occur, every one must have been
    // retried (which the count equality above already proves).
    println!("validation aborts observed: {total_aborts}");
}

/// Write skew is prevented: two objects with invariant a + b >= 0 and
/// transactions that each check the invariant before decrementing one
/// side. Under serializability the invariant must hold at the end.
#[test]
fn no_write_skew() {
    let c = cluster(2);
    let a = ObjRef::new(MemNodeId(0), 0, 64);
    let b = ObjRef::new(MemNodeId(1), 0, 64);
    {
        let mut t = DynTx::new(&c);
        t.write(a, 100i64.to_le_bytes().to_vec());
        t.write(b, 100i64.to_le_bytes().to_vec());
        t.commit().unwrap();
    }
    let mut handles = Vec::new();
    for side in 0..2 {
        let c = c.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                loop {
                    let mut t = DynTx::new(&c);
                    let va = i64::from_le_bytes(t.read(a).unwrap().try_into().unwrap());
                    let vb = i64::from_le_bytes(t.read(b).unwrap().try_into().unwrap());
                    if va + vb <= 0 {
                        return; // invariant boundary reached
                    }
                    // Decrement my side only if the combined balance allows.
                    if side == 0 {
                        t.write(a, (va - 1).to_le_bytes().to_vec());
                    } else {
                        t.write(b, (vb - 1).to_le_bytes().to_vec());
                    }
                    match t.commit() {
                        Ok(_) => break,
                        Err(TxError::Validation) => continue,
                        Err(e) => panic!("{e:?}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut t = DynTx::new(&c);
    let va = i64::from_le_bytes(t.read(a).unwrap().try_into().unwrap());
    let vb = i64::from_le_bytes(t.read(b).unwrap().try_into().unwrap());
    assert!(
        va + vb >= 0,
        "write skew violated the invariant: {va} + {vb}"
    );
}

/// Replicated objects stay replica-consistent under concurrent write-all
/// updates racing with read-any readers.
#[test]
fn replicated_objects_stay_consistent() {
    let c = cluster(3);
    let r = ReplRef::new(0, 64);
    {
        let mut t = DynTx::new(&c);
        t.write_repl(r, 0u64.to_le_bytes().to_vec());
        t.commit().unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let c = c.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut v = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                loop {
                    let mut t = DynTx::new(&c);
                    let _ = t.read_repl(r, MemNodeId((v % 3) as u16)).unwrap();
                    t.write_repl(r, (v + 1).to_le_bytes().to_vec());
                    match t.commit() {
                        Ok(_) => break,
                        Err(TxError::Validation) => continue,
                        Err(e) => panic!("{e:?}"),
                    }
                }
                v += 1;
            }
            v
        })
    };
    // Readers hopping across replicas must observe monotonically
    // non-decreasing values (write-all is atomic).
    let mut readers = Vec::new();
    for t0 in 0..2u16 {
        let c = c.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut last = 0u64;
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut t = DynTx::new(&c);
                let v = u64::from_le_bytes(
                    t.read_repl(r, MemNodeId((n % 3) as u16))
                        .unwrap()
                        .try_into()
                        .unwrap(),
                );
                assert!(v >= last, "replica went backwards: {v} < {last}");
                last = v;
                n += 1;
            }
            let _ = t0;
            n
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let final_v = writer.join().unwrap();
    for h in readers {
        assert!(h.join().unwrap() > 10);
    }
    // All replicas identical at the end.
    for mem in c.memnode_ids() {
        let mut t = DynTx::new(&c);
        let v = u64::from_le_bytes(t.read_repl(r, mem).unwrap().try_into().unwrap());
        assert_eq!(v, final_v);
    }
}

/// Dirty reads never poison unrelated transactions: heavy dirty-read
/// traffic on one object while it churns doesn't abort writers of other
/// objects.
#[test]
fn dirty_reads_do_not_create_conflicts() {
    let c = cluster(1);
    let hot = ObjRef::new(MemNodeId(0), 0, 64);
    let cold = ObjRef::new(MemNodeId(0), 64, 64);
    {
        let mut t = DynTx::new(&c);
        t.write(hot, vec![0]);
        t.write(cold, vec![0]);
        t.commit().unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churner = {
        let c = c.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0u8;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut t = DynTx::new(&c);
                let _ = t.read(hot).unwrap();
                t.write(hot, vec![i]);
                let _ = t.commit();
                i = i.wrapping_add(1);
            }
        })
    };
    // This transaction dirty-reads the hot object every time but writes
    // only the cold one: it must never fail validation.
    for i in 0..250u8 {
        let mut t = DynTx::new(&c);
        let _ = t.dirty_read(hot).unwrap();
        let _ = t.read(cold).unwrap();
        t.write(cold, vec![i]);
        t.commit().expect("dirty read must not join the read set");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    churner.join().unwrap();
}

/// Regression: draining the cluster to zero ready memnodes (every member
/// inside a join fence, the window a membership transition opens) must
/// surface the typed, retryable `NoReadyReplica` from commit — not panic
/// on an empty ready set or silently bind the replicated compare to a
/// node that holds no seeded replica. Clearing one fence makes the same
/// transaction commit again.
#[test]
fn all_nodes_joining_fails_commit_with_no_ready_replica() {
    let c = cluster(2);
    let r = ReplRef::new(0, 64);
    {
        let mut t = DynTx::new(&c);
        t.write_repl(r, 1u64.to_le_bytes().to_vec());
        t.commit().unwrap();
    }
    for id in c.memnode_ids().collect::<Vec<_>>() {
        c.node(id).set_joining(true);
    }

    // The joining fence gates placement, not service: reads still work.
    let mut t = DynTx::new(&c);
    let v = u64::from_le_bytes(t.read_repl(r, MemNodeId(0)).unwrap().try_into().unwrap());
    assert_eq!(v, 1);
    t.write_repl(r, 2u64.to_le_bytes().to_vec());
    assert!(matches!(t.commit(), Err(TxError::NoReadyReplica)));

    // Blind replicated writes need no compare binding; they still commit.
    let mut t = DynTx::new(&c);
    t.write_repl(r, 3u64.to_le_bytes().to_vec());
    t.commit()
        .expect("write-only repl transactions bind no compare replica");

    // One node finishing its join reopens the commit path.
    c.node(MemNodeId(0)).set_joining(false);
    let mut t = DynTx::new(&c);
    let v = u64::from_le_bytes(t.read_repl(r, MemNodeId(0)).unwrap().try_into().unwrap());
    assert_eq!(v, 3);
    t.write_repl(r, 4u64.to_le_bytes().to_vec());
    t.commit().expect("one ready memnode suffices to bind");
}
