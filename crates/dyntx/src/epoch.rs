//! Epoch-batched commit: amortizing validation round trips across
//! concurrent transactions.
//!
//! Per-commit OCC pays one validation round trip per transaction — fine in
//! a datacenter, ruinous over a WAN where the RTT is tens of milliseconds.
//! An [`EpochService`] instead enrolls every committing transaction in the
//! current *epoch*; when the epoch closes (it filled up, or its interval
//! expired), one leader validates and applies **all** of the epoch's
//! commit minitransactions through a single batched
//! [`minuet_sinfonia::SinfoniaCluster::exec_many`] pass — one round trip
//! per participant memnode for the whole epoch, instead of one per
//! transaction.
//!
//! ## The epoch invariant
//!
//! Epoch closes are serialized: epoch *E+1*'s batch does not execute until
//! *E*'s has fully committed. Every transaction in an epoch therefore
//! validates against a frozen snapshot of the state as of the prior
//! epoch's close, plus the writes of *earlier members of its own epoch*:
//! a memnode executes its slice of the batch **in order**, so a later
//! member's compares observe an earlier member's installed seqnos. Two
//! same-epoch transactions touching the same object resolve
//! first-committer-wins, exactly as they would under per-commit OCC —
//! batching changes *when* validation happens, never *what* it admits.
//!
//! Members never gain atomicity from sharing an epoch: each validates and
//! applies independently, and a validation failure aborts only its own
//! transaction ([`TxError::Validation`] to that caller).

use crate::txn::{commit_many, CommitInfo, DynTx, StagedCommit, TxError};
use minuet_obs::{span, SpanKind};
use minuet_sinfonia::SinfoniaCluster;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Epoch sizing knobs.
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// Close the epoch as soon as this many commits have enrolled.
    pub max_batch: usize,
    /// Close the epoch this long after its first enrollee arrives, even
    /// if it is not full. Bounds the latency a lone commit pays for
    /// batching; should be small next to the WAN RTT being amortized.
    pub interval: Duration,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            max_batch: 32,
            interval: Duration::from_millis(2),
        }
    }
}

/// Results of a closed epoch, held until every member has claimed its
/// slot.
struct ClosedEpoch {
    slots: Vec<Option<Result<CommitInfo, TxError>>>,
    unclaimed: usize,
}

struct Inner<'c> {
    /// Number of the currently open epoch; `pending` are its enrollees.
    epoch: u64,
    pending: Vec<StagedCommit<'c>>,
    /// When the open epoch received its first enrollee.
    opened: Option<Instant>,
    /// A leader is currently executing a close (epoch closes serialize:
    /// this is what freezes the prior-epoch snapshot the next epoch
    /// validates against).
    closing: bool,
    done: HashMap<u64, ClosedEpoch>,
}

/// The coordinator-side epoch service (see module docs). One instance per
/// commit stream; committing threads share it by reference.
pub struct EpochService<'c> {
    cluster: &'c SinfoniaCluster,
    cfg: EpochConfig,
    inner: Mutex<Inner<'c>>,
    cv: Condvar,
    epochs_closed: minuet_obs::Counter,
    batch_size: minuet_obs::HistHandle,
}

impl<'c> EpochService<'c> {
    /// Creates an epoch service over `cluster`.
    pub fn new(cluster: &'c SinfoniaCluster, cfg: EpochConfig) -> Self {
        assert!(cfg.max_batch > 0, "epoch batch must hold at least one");
        let registry = &cluster.obs().registry;
        EpochService {
            cluster,
            cfg,
            inner: Mutex::new(Inner {
                epoch: 1,
                pending: Vec::new(),
                opened: None,
                closing: false,
                done: HashMap::new(),
            }),
            cv: Condvar::new(),
            epochs_closed: registry.counter("epoch.closed"),
            batch_size: registry.histogram("epoch.batch_size"),
        }
    }

    /// The cluster this service commits against.
    pub fn cluster(&self) -> &'c SinfoniaCluster {
        self.cluster
    }

    /// Number of the currently open epoch.
    pub fn current_epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Commits `tx` through the epoch machinery: stage, enroll in the open
    /// epoch, block until that epoch's batched validation pass has run,
    /// return this transaction's own outcome. Equivalent to
    /// [`DynTx::commit`] in what it admits; cheaper in round trips.
    pub fn commit(&self, tx: DynTx<'c>) -> Result<CommitInfo, TxError> {
        self.commit_staged(tx.stage_commit())
    }

    /// [`EpochService::commit`] for an already-staged commit.
    pub fn commit_staged(&self, staged: StagedCommit<'c>) -> Result<CommitInfo, TxError> {
        // No-network members (fully piggy-back-validated read-only
        // commits, staging failures) resolve immediately: holding them
        // for an epoch would buy nothing and cost the interval.
        if staged.is_noop() || staged.staging_err().is_some() {
            return staged.execute();
        }

        let mut inner = self.inner.lock();
        let my_epoch = inner.epoch;
        let my_idx = inner.pending.len();
        if my_idx == 0 {
            inner.opened = Some(Instant::now());
        }
        inner.pending.push(staged);

        loop {
            // My epoch already closed? Claim my slot.
            if let Some(done) = inner.done.get_mut(&my_epoch) {
                let result = done.slots[my_idx].take().expect("slot claimed once");
                done.unclaimed -= 1;
                if done.unclaimed == 0 {
                    inner.done.remove(&my_epoch);
                }
                return result;
            }

            // Should *I* close it? Only while it is still the open epoch,
            // no other leader is mid-close, and it is full or expired.
            let open = inner.epoch == my_epoch && !inner.closing;
            let full = open && inner.pending.len() >= self.cfg.max_batch;
            let expired = open
                && inner
                    .opened
                    .is_some_and(|t| t.elapsed() >= self.cfg.interval);
            if full || expired {
                inner = self.close_epoch(inner);
                continue;
            }

            let _wait = span(SpanKind::EpochWait);
            if open {
                // Wake myself at the interval deadline to lead the close
                // if nothing else (a full batch, another leader) happens
                // first.
                let deadline = inner.opened.expect("open epoch has a start") + self.cfg.interval;
                self.cv.wait_until(&mut inner, deadline);
            } else {
                // A leader is executing (mine or an earlier epoch's); it
                // notifies when results land.
                self.cv.wait(&mut inner);
            }
        }
    }

    /// Closes the open epoch as leader: swap its batch out, open the next
    /// epoch, release the lock, run the advisory epoch marks plus the
    /// batched validation pass, publish per-member results, wake waiters.
    /// Takes the lock held; returns with it re-held.
    fn close_epoch<'g>(
        &'g self,
        mut inner: MutexGuard<'g, Inner<'c>>,
    ) -> MutexGuard<'g, Inner<'c>> {
        let epoch = inner.epoch;
        let batch = std::mem::take(&mut inner.pending);
        inner.epoch += 1;
        inner.opened = None;
        inner.closing = true;
        let n = batch.len();

        // Enrollment continues into the next epoch while this one
        // validates; only the close itself is serialized (`closing` keeps
        // other would-be leaders out until the results are published).
        drop(inner);

        // Advisory group decision: tell every memnode the epoch is
        // closing before its validation pass lands. One round trip
        // per memnode per *epoch* — amortized across the batch.
        for id in self.cluster.memnode_ids() {
            let _ = self.cluster.node(id).epoch_mark(epoch, true);
        }
        let results = commit_many(batch);

        let mut inner = self.inner.lock();
        let closed = match results {
            Ok(slots) => ClosedEpoch {
                slots: slots.into_iter().map(Some).collect(),
                unclaimed: n,
            },
            // A cluster-level failure (memnode past its retry budget)
            // fails every member identically.
            Err(e) => ClosedEpoch {
                slots: (0..n).map(|_| Some(Err(e.clone()))).collect(),
                unclaimed: n,
            },
        };
        inner.closing = false;
        inner.done.insert(epoch, closed);
        self.epochs_closed.inc();
        self.batch_size.record(n as u64);
        self.cv.notify_all();
        inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjRef;
    use minuet_sinfonia::{with_op_net, ClusterConfig, MemNodeId};
    use std::sync::Arc;

    fn cluster(n: usize) -> Arc<SinfoniaCluster> {
        SinfoniaCluster::new(ClusterConfig {
            memnodes: n,
            capacity_per_node: 1 << 20,
            ..Default::default()
        })
    }

    fn obj(mem: u16, off: u64) -> ObjRef {
        ObjRef::new(MemNodeId(mem), off, 64)
    }

    #[test]
    fn concurrent_commits_share_an_epoch() {
        let c = cluster(1);
        let svc = EpochService::new(
            &c,
            EpochConfig {
                max_batch: 8,
                interval: Duration::from_millis(50),
            },
        );
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let svc = &svc;
                let c = &c;
                s.spawn(move || {
                    let mut tx = DynTx::new(c);
                    tx.write(obj(0, i * 64), format!("v{i}").into_bytes());
                    svc.commit(tx).unwrap();
                });
            }
        });
        for i in 0..8u64 {
            let mut tx = DynTx::new(&c);
            assert_eq!(
                tx.read(obj(0, i * 64)).unwrap(),
                format!("v{i}").into_bytes()
            );
        }
        // All eight fit one epoch (or a couple, under scheduling jitter) —
        // never one epoch each.
        let closed = c.obs().registry.snapshot().counter("epoch.closed").unwrap();
        assert!(closed <= 4, "{closed} epochs for 8 concurrent commits");
    }

    #[test]
    fn lone_commit_closes_on_interval() {
        let c = cluster(1);
        let svc = EpochService::new(
            &c,
            EpochConfig {
                max_batch: 64,
                interval: Duration::from_millis(1),
            },
        );
        let mut tx = DynTx::new(&c);
        tx.write(obj(0, 0), b"solo".to_vec());
        let info = svc.commit(tx).unwrap();
        assert_eq!(info.installed.len(), 1);
    }

    #[test]
    fn same_epoch_conflict_is_first_committer_wins() {
        let c = cluster(1);
        let o = obj(0, 0);
        let mut t0 = DynTx::new(&c);
        t0.write(o, b"init".to_vec());
        t0.commit().unwrap();

        // Two transactions that read the same version and both write it,
        // staged *before* enrollment so they demonstrably share an epoch.
        let mut ta = DynTx::new(&c);
        let _ = ta.read(o).unwrap();
        ta.write(o, b"a".to_vec());
        let mut tb = DynTx::new(&c);
        let _ = tb.read(o).unwrap();
        tb.write(o, b"b".to_vec());

        let svc = EpochService::new(
            &c,
            EpochConfig {
                max_batch: 2,
                interval: Duration::from_secs(5),
            },
        );
        let (sa, sb) = (ta.stage_commit(), tb.stage_commit());
        let (ra, rb) = std::thread::scope(|s| {
            let ha = s.spawn(|| svc.commit_staged(sa));
            let hb = s.spawn(|| svc.commit_staged(sb));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        // Exactly one wins; the loser fails validation inside the batch
        // (the memnode executes batch members in order, so the second
        // member's compare sees the first's installed seqno).
        assert_ne!(ra.is_ok(), rb.is_ok(), "{ra:?} vs {rb:?}");
        let loser = if ra.is_ok() { rb } else { ra };
        assert_eq!(loser.unwrap_err(), TxError::Validation);
    }

    #[test]
    fn readonly_validated_commits_skip_the_epoch() {
        let c = cluster(1);
        let o = obj(0, 0);
        let mut t0 = DynTx::new(&c);
        t0.write(o, b"x".to_vec());
        t0.commit().unwrap();

        let svc = EpochService::new(
            &c,
            EpochConfig {
                max_batch: 64,
                interval: Duration::from_secs(10), // would hang a batched member
            },
        );
        let mut tx = DynTx::new(&c);
        let _ = tx.read(o).unwrap();
        let ((), net) = with_op_net(|| {
            assert!(svc.commit(tx).unwrap().validation_skipped);
        });
        assert_eq!(net.round_trips, 0);
    }

    #[test]
    fn epoch_batching_amortizes_validation_round_trips() {
        let c = cluster(1);
        let svc = EpochService::new(
            &c,
            EpochConfig {
                max_batch: 8,
                interval: Duration::from_secs(5),
            },
        );
        // Pre-stage eight independent updates, then commit them through
        // one epoch and count round trips across the whole pass: one
        // exec_many batch + one epoch mark, instead of eight commits.
        let staged: Vec<StagedCommit<'_>> = (0..8u64)
            .map(|i| {
                let mut tx = DynTx::new(&c);
                tx.write(obj(0, i * 64), vec![i as u8]);
                tx.stage_commit()
            })
            .collect();
        let before = c.transport.stats.snapshot().0;
        std::thread::scope(|s| {
            let handles: Vec<_> = staged
                .into_iter()
                .map(|sc| s.spawn(|| svc.commit_staged(sc).unwrap()))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let spent = c.transport.stats.snapshot().0 - before;
        assert!(
            spent <= 4,
            "8 epoch-batched commits cost {spent} round trips"
        );
    }
}
