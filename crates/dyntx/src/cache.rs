//! A non-coherent per-proxy object cache.
//!
//! Proxies cache fetched objects (B-tree inner nodes, the tip snapshot id,
//! catalog entries) to avoid network round trips. The cache is deliberately
//! *not* kept coherent across proxies or even across entries (§2.3):
//! staleness is caught by the B-tree's safety checks (fence keys, version
//! tags) and by commit-time validation, which trigger invalidation and
//! retry.

use crate::object::{ObjRef, SeqNo};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached object version.
#[derive(Clone, Debug)]
pub struct CachedObj {
    /// Version the value was observed at.
    pub seqno: SeqNo,
    /// Payload bytes.
    pub data: Arc<Vec<u8>>,
}

/// Cache hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: AtomicU64,
    /// Lookups that found nothing.
    pub misses: AtomicU64,
    /// Entries dropped by invalidation.
    pub invalidations: AtomicU64,
}

/// A simple unbounded object cache keyed by `(memnode, offset)`.
///
/// B-tree inner nodes are few relative to leaves (high fanout), so an
/// unbounded cache matches the paper's prototype; `clear` supports
/// bounded-memory policies on top.
pub struct ObjectCache {
    map: RwLock<HashMap<(u16, u64), CachedObj>>,
    /// Counters.
    pub stats: CacheStats,
}

impl Default for ObjectCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ObjectCache {
            map: RwLock::new(HashMap::new()),
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn key(obj: &ObjRef) -> (u16, u64) {
        (obj.mem.0, obj.off)
    }

    /// Looks up a cached version of `obj`.
    pub fn get(&self, obj: &ObjRef) -> Option<CachedObj> {
        let got = self.map.read().get(&Self::key(obj)).cloned();
        match &got {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Installs (or refreshes) a cached version.
    pub fn put(&self, obj: &ObjRef, seqno: SeqNo, data: Arc<Vec<u8>>) {
        self.map
            .write()
            .insert(Self::key(obj), CachedObj { seqno, data });
    }

    /// Drops the entry for `obj`, if any.
    pub fn invalidate(&self, obj: &ObjRef) {
        if self.map.write().remove(&Self::key(obj)).is_some() {
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minuet_sinfonia::MemNodeId;

    fn obj(mem: u16, off: u64) -> ObjRef {
        ObjRef::new(MemNodeId(mem), off, 64)
    }

    #[test]
    fn put_get_invalidate() {
        let c = ObjectCache::new();
        let o = obj(0, 100);
        assert!(c.get(&o).is_none());
        c.put(&o, 5, Arc::new(b"x".to_vec()));
        let got = c.get(&o).unwrap();
        assert_eq!(got.seqno, 5);
        assert_eq!(*got.data, b"x".to_vec());
        c.invalidate(&o);
        assert!(c.get(&o).is_none());
        assert_eq!(c.stats.invalidations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn distinct_offsets_distinct_entries() {
        let c = ObjectCache::new();
        c.put(&obj(0, 0), 1, Arc::new(vec![1]));
        c.put(&obj(0, 64), 2, Arc::new(vec![2]));
        c.put(&obj(1, 0), 3, Arc::new(vec![3]));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&obj(0, 64)).unwrap().seqno, 2);
    }

    #[test]
    fn stats_count() {
        let c = ObjectCache::new();
        let o = obj(0, 0);
        c.get(&o);
        c.put(&o, 1, Arc::new(vec![]));
        c.get(&o);
        assert_eq!(c.stats.hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats.misses.load(Ordering::Relaxed), 1);
    }
}
