//! Dynamic transactions: optimistic multi-object transactions built from
//! minitransactions (Aguilera et al., PVLDB 2008), extended with **dirty
//! reads** (Minuet §3).
//!
//! A dynamic transaction maintains a *read set* and a *write set* of
//! objects. Transactional reads fetch objects with minitransactions and
//! record the observed sequence numbers; commit executes one final
//! minitransaction that validates the read set (backward validation by
//! seqno comparison) and applies the write set atomically.
//!
//! Two optimizations from the papers are implemented faithfully:
//!
//! * **Piggy-backed validation**: fetch minitransactions carry compare
//!   items for the read-set entries co-located with the fetch target; if
//!   the last fetch validated the entire read set and the write set is
//!   empty, commit requires *zero* additional round trips.
//! * **Dirty reads** (Minuet's extension): fetch an object *without*
//!   adding it to the read set. The B-tree uses this to traverse internal
//!   nodes so that only the leaf must validate. A dirty-read object that is
//!   later written is first *promoted* into the read set with the seqno
//!   observed by the dirty read.

use crate::object::{decode_obj_shared, encode_obj, ObjRef, ObjVal, ReplRef, SeqNo};
use minuet_obs::{span, SpanKind};
use minuet_sinfonia::{Bytes, MemNodeId, Minitransaction, Outcome, SinfoniaCluster, SinfoniaError};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Key identifying an object within a transaction's read/write sets.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TxKey {
    /// A plain object on one memnode.
    Plain(ObjRef),
    /// A replicated object (all memnodes).
    Repl(ReplRef),
}

/// Reasons a dynamic transaction fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// Backward validation failed: some read-set object changed since it
    /// was read. The caller retries the whole operation.
    Validation,
    /// A memnode stayed unavailable beyond the retry budget.
    Unavailable(MemNodeId),
    /// No memnode is currently ready to serve replicated-object compares:
    /// every member reports joining (or its state is unknown after
    /// failures). Transient during membership changes — retryable, like
    /// [`TxError::Validation`], rather than a hard failure.
    NoReadyReplica,
    /// The operation's end-to-end deadline expired (see
    /// [`minuet_sinfonia::deadline`]). Not retryable within the same
    /// deadline scope: the caller's time budget is spent.
    DeadlineExceeded,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Validation => write!(f, "validation failed"),
            TxError::Unavailable(m) => write!(f, "memnode {m} unavailable"),
            TxError::NoReadyReplica => write!(f, "no memnode ready for replicated objects"),
            TxError::DeadlineExceeded => write!(f, "operation deadline exceeded"),
        }
    }
}

impl std::error::Error for TxError {}

impl From<SinfoniaError> for TxError {
    fn from(e: SinfoniaError) -> Self {
        match e {
            SinfoniaError::Unavailable(m) => TxError::Unavailable(m),
            SinfoniaError::OutOfBounds { mem, detail } => {
                panic!("out-of-bounds object access at {mem}: {detail}")
            }
            SinfoniaError::DeadlineExceeded => TxError::DeadlineExceeded,
        }
    }
}

/// Summary returned by a successful commit.
#[derive(Debug, Default)]
pub struct CommitInfo {
    /// New sequence numbers installed for written objects.
    pub installed: Vec<(TxKey, SeqNo)>,
    /// True if commit needed no minitransaction (read-only, fully
    /// piggy-back-validated).
    pub validation_skipped: bool,
}

/// A dynamic transaction over a Sinfonia cluster.
pub struct DynTx<'c> {
    cluster: &'c SinfoniaCluster,
    read_set: BTreeMap<TxKey, SeqNo>,
    read_vals: HashMap<TxKey, Bytes>,
    write_set: BTreeMap<TxKey, (Bytes, Option<SeqNo>)>,
    dirty_seen: HashMap<TxKey, SeqNo>,
    /// Raw compare items added verbatim to fetch (same-memnode) and commit
    /// minitransactions. Used by the baseline B-tree mode to validate
    /// internal-node seqnos against the replicated table (§2.3).
    raw_compares: Vec<(minuet_sinfonia::ItemRange, Vec<u8>)>,
    /// Raw write items added verbatim to the commit minitransaction (e.g.
    /// replicated seqno-table updates).
    raw_writes: Vec<(minuet_sinfonia::ItemRange, Vec<u8>)>,
    /// True iff every current read-set entry was compare-validated by the
    /// most recent minitransaction (all at one instant).
    fully_validated: bool,
    /// Piggy-backed validation enabled (ablation switch).
    piggyback: bool,
    /// Lock policy override for the commit minitransaction.
    blocking_commit: Option<Duration>,
}

impl<'c> DynTx<'c> {
    /// Begins a transaction with piggy-backed validation enabled.
    pub fn new(cluster: &'c SinfoniaCluster) -> Self {
        Self::with_piggyback(cluster, true)
    }

    /// Begins a transaction, choosing whether fetches piggy-back read-set
    /// validation (used by the `ablation_piggyback` bench).
    pub fn with_piggyback(cluster: &'c SinfoniaCluster, piggyback: bool) -> Self {
        DynTx {
            cluster,
            read_set: BTreeMap::new(),
            read_vals: HashMap::new(),
            write_set: BTreeMap::new(),
            dirty_seen: HashMap::new(),
            raw_compares: Vec::new(),
            raw_writes: Vec::new(),
            fully_validated: true,
            piggyback,
            blocking_commit: None,
        }
    }

    /// Makes the commit minitransaction *blocking*: memnodes wait for busy
    /// locks (up to the budget) instead of aborting. Used for replicated
    /// snapshot-id updates (§4.1).
    pub fn set_blocking_commit(&mut self, budget: Duration) {
        self.blocking_commit = Some(budget);
    }

    /// Number of objects in the read set.
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }

    /// Number of objects in the write set.
    pub fn write_set_len(&self) -> usize {
        self.write_set.len()
    }

    /// Access to the underlying cluster.
    pub fn cluster(&self) -> &'c SinfoniaCluster {
        self.cluster
    }

    /// The version at which `key` was read into the read set, if it was.
    /// Lets callers populate caches with `(seqno, value)` pairs.
    pub fn observed_seqno(&self, key: &TxKey) -> Option<SeqNo> {
        self.read_set.get(key).copied()
    }

    /// True if this transaction has staged a write to `key`.
    pub fn is_staged(&self, key: &TxKey) -> bool {
        self.write_set.contains_key(key)
    }

    /// Builds the piggy-back compare items for a fetch at `mem`: compares
    /// every read-set entry (and raw compare) whose (replica) seqno lives
    /// on `mem`. Returns whether *all* current entries were covered.
    fn piggyback_compares(&self, m: &mut Minitransaction, mem: MemNodeId) -> bool {
        if !self.piggyback {
            return self.read_set.is_empty() && self.raw_compares.is_empty();
        }
        let mut covered_all = true;
        for (key, seqno) in &self.read_set {
            let range = match key {
                TxKey::Plain(r) if r.mem == mem => r.seqno_range(),
                TxKey::Plain(_) => {
                    covered_all = false;
                    continue;
                }
                // Replicated objects validate against the local replica.
                TxKey::Repl(r) => r.at(mem).seqno_range(),
            };
            m.compare(range, seqno.to_le_bytes().to_vec());
        }
        for (range, expected) in &self.raw_compares {
            if range.mem == mem {
                m.compare(*range, expected.clone());
            } else {
                covered_all = false;
            }
        }
        covered_all
    }

    fn fetch(&mut self, key: TxKey, obj: ObjRef, track: bool) -> Result<ObjVal, TxError> {
        let mut m = Minitransaction::new();
        let covered_all = if track {
            self.piggyback_compares(&mut m, obj.mem)
        } else {
            false
        };
        m.read(obj.full_range());
        let outcome = {
            let _fetch = span(SpanKind::Fetch);
            self.cluster.execute(&m)?
        };
        match outcome {
            Outcome::FailedCompare(_) => Err(TxError::Validation),
            Outcome::Committed(res) => {
                // Zero-copy: the payload view aliases the page buffer the
                // memnode served (and the cached value is a refcount bump).
                let val = decode_obj_shared(&res.data[0]);
                if track {
                    // Never overwrite a version already pinned (e.g. by
                    // `assume_version`): the caller derived state from that
                    // version, so commit must keep validating it — a later
                    // fetch observing a newer seqno would silently launder
                    // the stale observation.
                    self.read_set.entry(key).or_insert(val.seqno);
                    self.read_vals.insert(key, val.data.clone());
                    // The fetch and the compares happened atomically: if the
                    // compares covered everything else, the entire read set
                    // (including this fetch) was valid at one instant.
                    self.fully_validated = covered_all;
                } else {
                    self.dirty_seen.insert(key, val.seqno);
                }
                Ok(val)
            }
        }
    }

    /// Transactional read of a plain object. Consults the write set, then
    /// the read set, then fetches from the memnode (adding the object to
    /// the read set for commit-time validation).
    pub fn read(&mut self, obj: ObjRef) -> Result<Bytes, TxError> {
        let key = TxKey::Plain(obj);
        if let Some((v, _)) = self.write_set.get(&key) {
            return Ok(v.clone());
        }
        if let Some(v) = self.read_vals.get(&key) {
            return Ok(v.clone());
        }
        Ok(self.fetch(key, obj, true)?.data)
    }

    /// Transactional read of a replicated object from the replica at
    /// `prefer`.
    pub fn read_repl(&mut self, obj: ReplRef, prefer: MemNodeId) -> Result<Bytes, TxError> {
        let key = TxKey::Repl(obj);
        if let Some((v, _)) = self.write_set.get(&key) {
            return Ok(v.clone());
        }
        if let Some(v) = self.read_vals.get(&key) {
            return Ok(v.clone());
        }
        Ok(self.fetch(key, obj.at(prefer), true)?.data)
    }

    /// **Dirty read** (Minuet §3): fetches the current value of `obj`
    /// without adding it to the read set. Returns the observed version so
    /// callers can populate caches; the version is remembered for
    /// promotion if the object is later written.
    pub fn dirty_read(&mut self, obj: ObjRef) -> Result<ObjVal, TxError> {
        let key = TxKey::Plain(obj);
        if let Some((v, _)) = self.write_set.get(&key) {
            return Ok(ObjVal {
                seqno: self.dirty_seen.get(&key).copied().unwrap_or(0),
                data: v.clone(),
            });
        }
        if let Some(v) = self.read_vals.get(&key) {
            return Ok(ObjVal {
                seqno: self.read_set[&key],
                data: v.clone(),
            });
        }
        self.fetch(key, obj, false)
    }

    /// Seeds the read set from a value the proxy already holds (e.g. its
    /// cached tip snapshot id, §4.1: "a proxy adds its cached copy of the
    /// tip snapshot ... to the transaction's read set"). No round trip; if
    /// the cached version is stale, validation fails and the caller
    /// refreshes its cache and retries.
    pub fn assume(&mut self, key: TxKey, seqno: SeqNo, value: impl Into<Bytes>) {
        self.read_set.insert(key, seqno);
        self.read_vals.insert(key, value.into());
        self.fully_validated = false;
    }

    /// Like [`DynTx::assume`] but pins only the *version* into the read
    /// set, without materializing the value. Used by the validated leaf
    /// cache: a get over a cached leaf pins the cached seqno so commit
    /// issues a compare-only validation minitransaction (tens of bytes)
    /// instead of re-fetching the leaf image. A subsequent `read` of the
    /// same object re-fetches the value (wasting the saved round trip)
    /// but keeps validating the pinned version, so a cache-served stale
    /// observation can never be laundered by the newer fetch.
    pub fn assume_version(&mut self, key: TxKey, seqno: SeqNo) {
        self.read_set.insert(key, seqno);
        self.fully_validated = false;
    }

    /// Records a dirty-read observation served from an upper-layer cache,
    /// so a later write can promote it with the right expected version.
    pub fn note_dirty(&mut self, obj: ObjRef, seqno: SeqNo) {
        self.dirty_seen.insert(TxKey::Plain(obj), seqno);
    }

    /// Transactional write of a plain object. If the object was previously
    /// dirty-read (directly or via [`DynTx::note_dirty`]) it is promoted
    /// into the read set first, so commit validates the version the writer
    /// derived its update from. Objects never read are written blindly
    /// (fresh allocations).
    pub fn write(&mut self, obj: ObjRef, payload: impl Into<Bytes>) {
        let payload = payload.into();
        assert!(
            payload.len() <= obj.payload_cap() as usize,
            "payload {} exceeds object capacity {}",
            payload.len(),
            obj.payload_cap()
        );
        let key = TxKey::Plain(obj);
        if !self.read_set.contains_key(&key) {
            if let Some(&seen) = self.dirty_seen.get(&key) {
                self.read_set.insert(key, seen);
            }
        }
        self.write_set.insert(key, (payload, None));
    }

    /// Like [`DynTx::write`], but pins the sequence number the commit will
    /// install. Used when the new seqno must also be written elsewhere in
    /// the same commit (the baseline's replicated seqno table, §2.3).
    pub fn write_with_seqno(&mut self, obj: ObjRef, payload: impl Into<Bytes>, seqno: SeqNo) {
        let payload = payload.into();
        assert!(payload.len() <= obj.payload_cap() as usize);
        let key = TxKey::Plain(obj);
        if !self.read_set.contains_key(&key) {
            if let Some(&seen) = self.dirty_seen.get(&key) {
                self.read_set.insert(key, seen);
            }
        }
        self.write_set.insert(key, (payload, Some(seqno)));
    }

    /// Adds a raw compare item evaluated both by subsequent same-memnode
    /// fetches (piggy-backed) and by the commit minitransaction.
    pub fn add_raw_compare(&mut self, range: minuet_sinfonia::ItemRange, expected: Vec<u8>) {
        self.raw_compares.push((range, expected));
        self.fully_validated = false;
    }

    /// Adds a raw write item applied by the commit minitransaction.
    pub fn add_raw_write(&mut self, range: minuet_sinfonia::ItemRange, data: Vec<u8>) {
        self.raw_writes.push((range, data));
    }

    /// Transactional write of a replicated object: commit updates every
    /// replica atomically (engaging all memnodes).
    pub fn write_repl(&mut self, obj: ReplRef, payload: impl Into<Bytes>) {
        let payload = payload.into();
        assert!(payload.len() <= obj.payload_cap() as usize);
        self.write_set.insert(TxKey::Repl(obj), (payload, None));
    }

    /// True if the transaction has nothing to write.
    pub fn is_read_only(&self) -> bool {
        self.write_set.is_empty()
    }

    /// Commits the transaction.
    ///
    /// Read-only transactions whose read set was entirely validated by the
    /// last fetch minitransaction commit without any round trip. Otherwise
    /// a single minitransaction validates every read-set entry and applies
    /// every write atomically; it commits at a single memnode (one phase)
    /// whenever all items land there.
    pub fn commit(self) -> Result<CommitInfo, TxError> {
        self.stage_commit().execute()
    }

    /// Builds the commit minitransaction without executing it, so several
    /// transactions' commits can be pipelined through one batched
    /// [`SinfoniaCluster::exec_many`] round trip per memnode (see
    /// [`commit_many`]). Consumes the transaction. Replicated writes are
    /// *not* fanned out to replicas here: the expansion happens at
    /// execution time under the membership gate, so staging any number of
    /// commits never holds a lock (holding several gate read guards on
    /// one thread could deadlock against a parked `add_memnode` writer).
    pub fn stage_commit(self) -> StagedCommit<'c> {
        if self.write_set.is_empty() && self.raw_writes.is_empty() && self.fully_validated {
            return StagedCommit {
                cluster: self.cluster,
                m: None,
                repl_writes: Vec::new(),
                installed: Vec::new(),
                err: None,
            };
        }

        // Assembly counts as commit time: binding replicated compares
        // checks memnode flags (a cached read — the wire client keeps them
        // fresh off every reply envelope) and staging writes copies every
        // node image.
        let _commit = span(SpanKind::Commit);

        let mut m = Minitransaction::new();
        if let Some(budget) = self.blocking_commit {
            m = m.blocking(budget);
        }

        // Bind replicated-object compares to a memnode that is already a
        // participant, to preserve single-node commits. Joining memnodes
        // are skipped: their replicas of pre-existing replicated objects
        // may not be seeded yet, so comparing there would spuriously fail.
        let ready = |mem: MemNodeId| !self.cluster.node(mem).is_joining();
        let bind = self
            .write_set
            .keys()
            .find_map(|k| match k {
                TxKey::Plain(r) if ready(r.mem) => Some(r.mem),
                _ => None,
            })
            .or_else(|| {
                self.read_set.keys().find_map(|k| match k {
                    TxKey::Plain(r) if ready(r.mem) => Some(r.mem),
                    _ => None,
                })
            });
        // A bind is only *required* when replicated compares exist; resolve
        // the cluster-wide fallback lazily, and surface a typed retryable
        // error when every memnode is joining or of unknown state (a drain
        // or fault window) instead of binding compares to an unseeded
        // replica, which would fail them spuriously — or worse, pass them
        // against garbage.
        let needs_bind = self.read_set.keys().any(|k| matches!(k, TxKey::Repl(_)));
        let bind = match (bind, needs_bind) {
            (Some(b), _) => Some(b),
            (None, false) => None,
            (None, true) => match self.cluster.try_first_ready() {
                Some(b) => Some(b),
                None => {
                    return StagedCommit {
                        cluster: self.cluster,
                        m: None,
                        repl_writes: Vec::new(),
                        installed: Vec::new(),
                        err: Some(TxError::NoReadyReplica),
                    }
                }
            },
        };

        for (key, seqno) in &self.read_set {
            let range = match key {
                TxKey::Plain(r) => r.seqno_range(),
                TxKey::Repl(r) => {
                    let bind = bind.expect("repl compare binds a ready memnode");
                    r.at(bind).seqno_range()
                }
            };
            m.compare(range, seqno.to_le_bytes().to_vec());
        }
        for (range, expected) in &self.raw_compares {
            m.compare(*range, expected.clone());
        }

        let mut installed = Vec::with_capacity(self.write_set.len());
        let mut repl_writes = Vec::new();
        for (key, (payload, pinned)) in &self.write_set {
            let new_seqno = pinned.unwrap_or_else(|| self.cluster.next_txid());
            let image = encode_obj(new_seqno, payload);
            match key {
                TxKey::Plain(r) => {
                    let range = minuet_sinfonia::ItemRange::new(r.mem, r.off, image.len() as u32);
                    m.write(range, image);
                }
                // Deferred: expanded to one write per replica at execution
                // time, under the membership gate; one shared buffer
                // serves every replica's write item.
                TxKey::Repl(r) => repl_writes.push((*r, Bytes::from(image))),
            }
            installed.push((*key, new_seqno));
        }
        for (range, data) in &self.raw_writes {
            m.write(*range, data.clone());
        }

        StagedCommit {
            cluster: self.cluster,
            m: Some(m),
            repl_writes,
            installed,
            err: None,
        }
    }
}

/// A commit that has been fully assembled but not yet executed: the commit
/// minitransaction (absent for read-only, fully piggy-back-validated
/// transactions), any replicated writes awaiting their per-replica
/// expansion, and the seqnos the commit installs on success. Replicated
/// writes fan out at execution time under the membership gate, so an
/// elastic `add_memnode` cannot add a replica the commit would miss —
/// and a staged commit holds no locks while it waits. Produced by
/// [`DynTx::stage_commit`], consumed by [`StagedCommit::execute`] or
/// [`commit_many`].
pub struct StagedCommit<'c> {
    cluster: &'c SinfoniaCluster,
    m: Option<Minitransaction>,
    repl_writes: Vec<(ReplRef, Bytes)>,
    installed: Vec<(TxKey, SeqNo)>,
    /// Staging itself failed (e.g. no ready memnode to bind replicated
    /// compares to); `execute` / [`commit_many`] surface this without
    /// touching the network.
    err: Option<TxError>,
}

impl<'c> StagedCommit<'c> {
    /// True if no commit minitransaction is needed (read-only, fully
    /// validated by piggy-backed compares).
    pub fn is_noop(&self) -> bool {
        self.m.is_none() && self.err.is_none()
    }

    /// The error staging itself produced, if any. [`StagedCommit::execute`]
    /// and [`commit_many`] surface it without touching the network, so
    /// batching layers can short-circuit such members instead of holding
    /// them for a batch.
    pub fn staging_err(&self) -> Option<&TxError> {
        self.err.as_ref()
    }

    /// The cluster this commit targets.
    pub fn cluster(&self) -> &'c SinfoniaCluster {
        self.cluster
    }

    fn into_info(installed: Vec<(TxKey, SeqNo)>, outcome: Outcome) -> Result<CommitInfo, TxError> {
        match outcome {
            Outcome::Committed(_) => Ok(CommitInfo {
                installed,
                validation_skipped: false,
            }),
            Outcome::FailedCompare(_) => Err(TxError::Validation),
        }
    }

    /// Expands the deferred replicated writes into `m`, one write item per
    /// current replica. The caller must hold the membership gate whenever
    /// `repl_writes` is nonempty.
    fn expand_repl_writes(
        m: &mut Minitransaction,
        repl_writes: &[(ReplRef, Bytes)],
        cluster: &SinfoniaCluster,
    ) {
        for (r, image) in repl_writes {
            for mem in cluster.memnode_ids() {
                let range = minuet_sinfonia::ItemRange::new(mem, r.off, image.len() as u32);
                m.write(range, image.clone());
            }
        }
    }

    /// Executes the staged commit on its own (the unbatched path).
    pub fn execute(self) -> Result<CommitInfo, TxError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        let Some(mut m) = self.m else {
            return Ok(CommitInfo {
                installed: Vec::new(),
                validation_skipped: true,
            });
        };
        // Replicated writes snapshot the membership to enumerate replicas;
        // hold the gate until the minitransaction has executed so an
        // elastic `add_memnode` cannot add a replica this commit misses.
        let _membership = if self.repl_writes.is_empty() {
            None
        } else {
            Some(self.cluster.membership_guard())
        };
        Self::expand_repl_writes(&mut m, &self.repl_writes, self.cluster);
        let outcome = {
            let _commit = span(SpanKind::Commit);
            self.cluster.execute(&m)?
        };
        Self::into_info(self.installed, outcome)
    }
}

/// Executes many staged commits as one batch: the commit minitransactions
/// go through [`SinfoniaCluster::exec_many`], so N single-memnode commits
/// bound for the same memnode cost one round trip instead of N. Each
/// commit validates and applies independently (there is no atomicity
/// across batch members); per-transaction outcomes are returned in input
/// order, [`TxError::Validation`] marking the members whose read sets went
/// stale. All staged commits must target the same cluster.
///
/// ```
/// use minuet_sinfonia::{ClusterConfig, MemNodeId, SinfoniaCluster};
/// use minuet_dyntx::{commit_many, DynTx, ObjRef};
///
/// let cluster = SinfoniaCluster::new(ClusterConfig::with_memnodes(1));
/// let staged: Vec<_> = (0..4u64)
///     .map(|i| {
///         let mut tx = DynTx::new(&cluster);
///         tx.write(ObjRef::new(MemNodeId(0), i * 64, 64), vec![i as u8]);
///         tx.stage_commit()
///     })
///     .collect();
/// // All four commits share one batched round trip to memnode 0.
/// let results = commit_many(staged).unwrap();
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
pub fn commit_many(
    staged: Vec<StagedCommit<'_>>,
) -> Result<Vec<Result<CommitInfo, TxError>>, TxError> {
    let Some(first) = staged.first() else {
        return Ok(Vec::new());
    };
    let cluster = first.cluster;
    // Mixing clusters would silently apply every member to the first
    // cluster's memnodes; the pointer comparisons are cheap enough to
    // keep in release builds.
    assert!(
        staged
            .iter()
            .all(|s| std::ptr::eq(s.cluster as *const _, cluster as *const _)),
        "commit_many across clusters"
    );
    // One gate acquisition covers every member's replicated fan-out
    // (never take the gate per member: multiple read guards on one
    // thread can deadlock against a parked add_memnode writer).
    let _membership = if staged.iter().any(|s| !s.repl_writes.is_empty()) {
        Some(cluster.membership_guard())
    } else {
        None
    };
    // Move each commit minitransaction out (no payload clones) while
    // remembering which members have one; members whose staging already
    // failed carry their error through without joining the batch.
    enum Member {
        Mini(Vec<(TxKey, SeqNo)>),
        Noop,
        Failed(TxError),
    }
    let mut batch: Vec<Minitransaction> = Vec::with_capacity(staged.len());
    let mut members: Vec<Member> = Vec::with_capacity(staged.len());
    for s in staged {
        if let Some(e) = s.err {
            members.push(Member::Failed(e));
            continue;
        }
        match s.m {
            Some(mut m) => {
                StagedCommit::expand_repl_writes(&mut m, &s.repl_writes, cluster);
                batch.push(m);
                members.push(Member::Mini(s.installed));
            }
            None => members.push(Member::Noop),
        }
    }
    let outcomes = {
        let _commit = span(SpanKind::Commit);
        cluster.exec_many(&batch)?
    };
    let mut outcomes = outcomes.into_iter();
    Ok(members
        .into_iter()
        .map(|member| match member {
            Member::Mini(installed) => {
                let outcome = outcomes.next().expect("one outcome per minitx");
                StagedCommit::into_info(installed, outcome)
            }
            Member::Noop => Ok(CommitInfo {
                installed: Vec::new(),
                validation_skipped: true,
            }),
            Member::Failed(e) => Err(e),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minuet_sinfonia::{with_op_net, ClusterConfig};
    use std::sync::Arc;

    fn cluster(n: usize) -> Arc<SinfoniaCluster> {
        SinfoniaCluster::new(ClusterConfig {
            memnodes: n,
            capacity_per_node: 1 << 20,
            ..Default::default()
        })
    }

    fn obj(mem: u16, off: u64) -> ObjRef {
        ObjRef::new(MemNodeId(mem), off, 64)
    }

    #[test]
    fn write_then_read_back() {
        let c = cluster(1);
        let o = obj(0, 0);
        let mut tx = DynTx::new(&c);
        tx.write(o, b"v1".to_vec());
        tx.commit().unwrap();

        let mut tx = DynTx::new(&c);
        assert_eq!(tx.read(o).unwrap(), b"v1");
        assert!(tx.commit().unwrap().validation_skipped);
    }

    #[test]
    fn read_own_writes() {
        let c = cluster(1);
        let o = obj(0, 0);
        let mut tx = DynTx::new(&c);
        tx.write(o, b"mine".to_vec());
        assert_eq!(tx.read(o).unwrap(), b"mine");
    }

    #[test]
    fn validation_detects_conflict() {
        let c = cluster(1);
        let o = obj(0, 0);
        let mut t0 = DynTx::new(&c);
        t0.write(o, b"init".to_vec());
        t0.commit().unwrap();

        let mut t1 = DynTx::new(&c);
        let _ = t1.read(o).unwrap();
        // Concurrent writer commits first.
        let mut t2 = DynTx::new(&c);
        let _ = t2.read(o).unwrap();
        t2.write(o, b"two".to_vec());
        t2.commit().unwrap();

        t1.write(o, b"one".to_vec());
        assert_eq!(t1.commit().unwrap_err(), TxError::Validation);
        // t2's write survives.
        let mut t3 = DynTx::new(&c);
        assert_eq!(t3.read(o).unwrap(), b"two");
    }

    #[test]
    fn dirty_read_skips_validation() {
        let c = cluster(1);
        let a = obj(0, 0);
        let b = obj(0, 64);
        let mut t0 = DynTx::new(&c);
        t0.write(a, b"a0".to_vec());
        t0.write(b, b"b0".to_vec());
        t0.commit().unwrap();

        // t1 dirty-reads a, transactionally reads b.
        let mut t1 = DynTx::new(&c);
        assert_eq!(t1.dirty_read(a).unwrap().data, b"a0");
        assert_eq!(t1.read(b).unwrap(), b"b0");
        // Concurrent update to a (the dirty-read object).
        let mut t2 = DynTx::new(&c);
        let _ = t2.read(a).unwrap();
        t2.write(a, b"a1".to_vec());
        t2.commit().unwrap();
        // t1 still commits: a is not in its read set.
        assert_eq!(t1.read_set_len(), 1);
        assert!(t1.commit().is_ok());
    }

    #[test]
    fn dirty_then_write_promotes_and_validates() {
        let c = cluster(1);
        let a = obj(0, 0);
        let mut t0 = DynTx::new(&c);
        t0.write(a, b"a0".to_vec());
        t0.commit().unwrap();

        let mut t1 = DynTx::new(&c);
        let _ = t1.dirty_read(a).unwrap();
        // Concurrent update invalidates the version t1 observed.
        let mut t2 = DynTx::new(&c);
        let _ = t2.read(a).unwrap();
        t2.write(a, b"a1".to_vec());
        t2.commit().unwrap();

        t1.write(a, b"bad".to_vec()); // promotion: expected seqno = dirty-read version
        assert_eq!(t1.commit().unwrap_err(), TxError::Validation);
    }

    #[test]
    fn piggyback_makes_readonly_commit_free() {
        let c = cluster(1);
        let a = obj(0, 0);
        let b = obj(0, 64);
        let mut t0 = DynTx::new(&c);
        t0.write(a, b"a".to_vec());
        t0.write(b, b"b".to_vec());
        t0.commit().unwrap();

        let mut t1 = DynTx::new(&c);
        let _ = t1.read(a).unwrap();
        let ((), net) = with_op_net(|| {
            let _ = t1.read(b).unwrap();
        });
        assert_eq!(net.round_trips, 1); // fetch b validates a in the same trip
        let info = t1.commit().unwrap();
        assert!(info.validation_skipped);
    }

    #[test]
    fn no_piggyback_requires_commit_validation() {
        let c = cluster(1);
        let a = obj(0, 0);
        let b = obj(0, 64);
        let mut t0 = DynTx::new(&c);
        t0.write(a, b"a".to_vec());
        t0.write(b, b"b".to_vec());
        t0.commit().unwrap();

        let mut t1 = DynTx::with_piggyback(&c, false);
        let _ = t1.read(a).unwrap();
        let _ = t1.read(b).unwrap();
        let info = t1.commit().unwrap();
        assert!(!info.validation_skipped);
    }

    #[test]
    fn assume_version_pin_survives_a_later_fetch() {
        // assume_version then read(): the fetch must keep validating the
        // pinned (possibly stale) version, not the freshly observed one.
        let c = cluster(1);
        let a = obj(0, 0);
        let mut t0 = DynTx::new(&c);
        t0.write(a, b"a0".to_vec());
        let seq0 = t0.commit().unwrap().installed[0].1;

        // Piggyback off so the re-fetch itself cannot catch the staleness;
        // only commit validation of the pinned seqno can.
        let mut t1 = DynTx::with_piggyback(&c, false);
        t1.assume_version(TxKey::Plain(a), seq0);
        // Concurrent update invalidates the pinned observation.
        let mut t2 = DynTx::new(&c);
        let _ = t2.read(a).unwrap();
        t2.write(a, b"a1".to_vec());
        t2.commit().unwrap();

        assert_eq!(t1.read(a).unwrap(), b"a1"); // fetch sees the new value
        t1.write(obj(0, 64), b"x".to_vec());
        assert_eq!(t1.commit().unwrap_err(), TxError::Validation);
    }

    #[test]
    fn piggyback_catches_stale_assumption() {
        let c = cluster(1);
        let a = obj(0, 0);
        let b = obj(0, 64);
        let mut t0 = DynTx::new(&c);
        t0.write(a, b"a0".to_vec());
        t0.write(b, b"b0".to_vec());
        t0.commit().unwrap();

        // Proxy cached a at some stale version.
        let mut t1 = DynTx::new(&c);
        t1.assume(TxKey::Plain(a), 9999, b"stale".to_vec());
        assert_eq!(t1.read(b).unwrap_err(), TxError::Validation);
    }

    #[test]
    fn replicated_write_updates_all_replicas() {
        let c = cluster(3);
        let r = ReplRef::new(0, 64);
        let mut t = DynTx::new(&c);
        t.write_repl(r, b"tip".to_vec());
        t.commit().unwrap();
        for mem in c.memnode_ids() {
            let mut tr = DynTx::new(&c);
            assert_eq!(tr.read_repl(r, mem).unwrap(), b"tip");
        }
    }

    #[test]
    fn replicated_read_any_validates_against_write_all() {
        let c = cluster(3);
        let r = ReplRef::new(0, 64);
        let mut t0 = DynTx::new(&c);
        t0.write_repl(r, b"v0".to_vec());
        t0.commit().unwrap();

        // Reader snapshots the replicated object from replica 2.
        let mut t1 = DynTx::new(&c);
        let _ = t1.read_repl(r, MemNodeId(2)).unwrap();
        // Writer bumps it everywhere.
        let mut t2 = DynTx::new(&c);
        let _ = t2.read_repl(r, MemNodeId(0)).unwrap();
        t2.write_repl(r, b"v1".to_vec());
        t2.commit().unwrap();
        // Reader's plain-object write must fail validation of the repl entry.
        let o = obj(1, 512);
        t1.write(o, b"x".to_vec());
        assert_eq!(t1.commit().unwrap_err(), TxError::Validation);
    }

    #[test]
    fn single_key_update_is_two_round_trips() {
        let c = cluster(4);
        let o = obj(2, 0);
        let mut t0 = DynTx::new(&c);
        t0.write(o, b"v0".to_vec());
        t0.commit().unwrap();

        let (res, net) = with_op_net(|| {
            let mut t = DynTx::new(&c);
            let _ = t.read(o).unwrap(); // 1 RT
            t.write(o, b"v1".to_vec());
            t.commit().unwrap() // 1 RT (single memnode, one-phase)
        });
        assert!(!res.validation_skipped);
        assert_eq!(net.round_trips, 2);
    }

    #[test]
    fn blind_write_needs_no_read() {
        let c = cluster(2);
        let o = obj(1, 4096);
        let (_, net) = with_op_net(|| {
            let mut t = DynTx::new(&c);
            t.write(o, b"fresh".to_vec());
            t.commit().unwrap();
        });
        assert_eq!(net.round_trips, 1);
        let mut t = DynTx::new(&c);
        assert_eq!(t.read(o).unwrap(), b"fresh");
    }

    #[test]
    fn commit_many_batches_colocated_commits_into_one_round_trip() {
        let c = cluster(2);
        // Blind writes to 8 distinct objects on memnode 0.
        let staged: Vec<StagedCommit<'_>> = (0..8)
            .map(|i| {
                let mut t = DynTx::new(&c);
                t.write(obj(0, i * 64), format!("v{i}").into_bytes());
                t.stage_commit()
            })
            .collect();
        let (results, net) = with_op_net(|| commit_many(staged).unwrap());
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(net.round_trips, 1);
        for i in 0..8 {
            let mut t = DynTx::new(&c);
            assert_eq!(
                t.read(obj(0, i * 64)).unwrap(),
                format!("v{i}").into_bytes()
            );
        }
    }

    #[test]
    fn commit_many_isolates_validation_failures() {
        let c = cluster(1);
        let a = obj(0, 0);
        let b = obj(0, 64);
        let mut t0 = DynTx::new(&c);
        t0.write(a, b"a0".to_vec());
        t0.write(b, b"b0".to_vec());
        t0.commit().unwrap();

        // Two updaters; a concurrent writer invalidates only `a`.
        let mut ta = DynTx::new(&c);
        let _ = ta.read(a).unwrap();
        ta.write(a, b"a1".to_vec());
        let mut tb = DynTx::new(&c);
        let _ = tb.read(b).unwrap();
        tb.write(b, b"b1".to_vec());

        let mut interloper = DynTx::new(&c);
        let _ = interloper.read(a).unwrap();
        interloper.write(a, b"ax".to_vec());
        interloper.commit().unwrap();

        let results = commit_many(vec![ta.stage_commit(), tb.stage_commit()]).unwrap();
        assert_eq!(results[0].as_ref().unwrap_err(), &TxError::Validation);
        assert!(results[1].is_ok());
        let mut t = DynTx::new(&c);
        assert_eq!(t.read(a).unwrap(), b"ax");
        assert_eq!(t.read(b).unwrap(), b"b1");
    }

    #[test]
    fn commit_many_passes_noop_commits_through() {
        let c = cluster(1);
        let a = obj(0, 0);
        let mut t0 = DynTx::new(&c);
        t0.write(a, b"a".to_vec());
        t0.commit().unwrap();

        let mut ro = DynTx::new(&c);
        let _ = ro.read(a).unwrap();
        let mut w = DynTx::new(&c);
        w.write(obj(0, 64), b"w".to_vec());

        let results = commit_many(vec![ro.stage_commit(), w.stage_commit()]).unwrap();
        assert!(results[0].as_ref().unwrap().validation_skipped);
        assert!(!results[1].as_ref().unwrap().validation_skipped);
        assert!(commit_many(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn unique_seqnos_prevent_aba() {
        let c = cluster(1);
        let o = obj(0, 0);
        let mut t0 = DynTx::new(&c);
        t0.write(o, b"A".to_vec());
        t0.commit().unwrap();

        let mut reader = DynTx::new(&c);
        let _ = reader.read(o).unwrap();

        // A -> B -> A: same payload returns, but seqno differs.
        for v in [b"B".to_vec(), b"A".to_vec()] {
            let mut t = DynTx::new(&c);
            let _ = t.read(o).unwrap();
            t.write(o, v);
            t.commit().unwrap();
        }
        reader.write(o, b"C".to_vec());
        assert_eq!(reader.commit().unwrap_err(), TxError::Validation);
    }
}
