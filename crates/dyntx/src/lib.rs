//! # minuet-dyntx
//!
//! The **dynamic transaction layer** of Aguilera et al. (PVLDB 2008),
//! extended with Minuet's **dirty reads** (§3 of the Minuet paper).
//!
//! Dynamic transactions let applications read and write arbitrary objects
//! discovered *during* execution (something a single minitransaction cannot
//! do, since minitransaction items must be declared up front). They use
//! optimistic concurrency control with backward validation: objects carry
//! sequence numbers; commit executes a final minitransaction that compares
//! the read-set seqnos and applies the write set atomically.
//!
//! Key features:
//! * per-object sequence numbers with globally-unique ids (ABA-safe),
//! * piggy-backed validation (read-only transactions can commit for free),
//! * dirty reads that bypass the read set, with promotion-on-write,
//! * replicated objects (read-any / write-all) for hot metadata,
//! * a non-coherent per-proxy object cache.
//!
//! ```
//! use minuet_sinfonia::{ClusterConfig, SinfoniaCluster, MemNodeId};
//! use minuet_dyntx::{DynTx, ObjRef};
//!
//! let cluster = SinfoniaCluster::new(ClusterConfig::with_memnodes(2));
//! let obj = ObjRef::new(MemNodeId(1), 0, 64);
//!
//! let mut tx = DynTx::new(&cluster);
//! tx.write(obj, b"hello".to_vec());
//! tx.commit().unwrap();
//!
//! let mut tx = DynTx::new(&cluster);
//! assert_eq!(tx.read(obj).unwrap(), b"hello");
//! tx.commit().unwrap();
//! ```

pub mod cache;
pub mod epoch;
pub mod object;
pub mod txn;

pub use cache::{CachedObj, ObjectCache};
pub use epoch::{EpochConfig, EpochService};
pub use object::{
    decode_obj, decode_obj_shared, encode_obj, ObjRef, ObjVal, ReplRef, SeqNo, OBJ_HEADER,
};
pub use txn::{commit_many, CommitInfo, DynTx, StagedCommit, TxError, TxKey};
