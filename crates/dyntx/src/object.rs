//! Objects: versioned byte regions layered over the Sinfonia address space.
//!
//! The dynamic transaction layer (Aguilera et al., PVLDB 2008) turns the raw
//! compare/read/write interface of minitransactions into transactional
//! *objects*. Each object occupies a fixed-capacity region whose first bytes
//! hold a header: a **sequence number** that changes on every update (used
//! for cheap backward validation) and the current payload length.
//!
//! Sequence numbers here are globally unique rather than per-object
//! monotonic: every committed write installs a fresh id drawn from a global
//! counter. Equality comparison still detects any intervening update, and
//! uniqueness additionally rules out ABA hazards when the allocator reuses
//! freed regions.

use minuet_sinfonia::{Bytes, ItemRange, MemNodeId};

/// Size of the object header: 8-byte seqno + 4-byte payload length.
pub const OBJ_HEADER: u32 = 12;

/// Sequence number of an object version. `0` means "never written".
pub type SeqNo = u64;

/// Reference to a plain (unreplicated) object: a fixed-capacity region on
/// one memnode. `cap` includes the header.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjRef {
    /// Home memnode.
    pub mem: MemNodeId,
    /// Byte offset of the region.
    pub off: u64,
    /// Total region capacity in bytes, including the header.
    pub cap: u32,
}

impl ObjRef {
    /// Creates an object reference.
    pub fn new(mem: MemNodeId, off: u64, cap: u32) -> Self {
        debug_assert!(cap >= OBJ_HEADER);
        ObjRef { mem, off, cap }
    }

    /// Maximum payload this object can hold.
    pub fn payload_cap(&self) -> u32 {
        self.cap - OBJ_HEADER
    }

    /// The range holding the 8-byte sequence number.
    pub fn seqno_range(&self) -> ItemRange {
        ItemRange::new(self.mem, self.off, 8)
    }

    /// The full region range.
    pub fn full_range(&self) -> ItemRange {
        ItemRange::new(self.mem, self.off, self.cap)
    }
}

/// Reference to a replicated object: the same `(off, cap)` region on
/// *every* memnode of the cluster. Reads may use any replica; writes update
/// all replicas atomically (used for the tip snapshot id and root location,
/// §4.1, and the baseline's internal-node sequence-number table, §2.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReplRef {
    /// Byte offset of the region on each memnode.
    pub off: u64,
    /// Region capacity (with header).
    pub cap: u32,
}

impl ReplRef {
    /// Creates a replicated object reference.
    pub fn new(off: u64, cap: u32) -> Self {
        debug_assert!(cap >= OBJ_HEADER);
        ReplRef { off, cap }
    }

    /// The replica of this object living on `mem`.
    pub fn at(&self, mem: MemNodeId) -> ObjRef {
        ObjRef::new(mem, self.off, self.cap)
    }

    /// Maximum payload this object can hold.
    pub fn payload_cap(&self) -> u32 {
        self.cap - OBJ_HEADER
    }
}

/// A fetched object version. The payload is a refcounted [`Bytes`] view —
/// on the hot read path it aliases the memnode page the object was read
/// from, so fetching never copies the image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjVal {
    /// Version observed.
    pub seqno: SeqNo,
    /// Payload bytes (header stripped).
    pub data: Bytes,
}

impl ObjVal {
    /// True if the object has never been written.
    pub fn is_unwritten(&self) -> bool {
        self.seqno == 0
    }
}

/// Encodes an object region image: header plus payload.
pub fn encode_obj(seqno: SeqNo, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(OBJ_HEADER as usize + payload.len());
    out.extend_from_slice(&seqno.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a raw region image into an [`ObjVal`], copying the payload.
/// Prefer [`decode_obj_shared`] when the image is already a [`Bytes`] —
/// it slices instead of copying.
///
/// Tolerates short buffers (unwritten regions read as zeroes).
pub fn decode_obj(raw: &[u8]) -> ObjVal {
    let (seqno, start, len) = decode_header(raw);
    ObjVal {
        seqno,
        data: Bytes::from(&raw[start..start + len]),
    }
}

/// Zero-copy variant of [`decode_obj`]: the returned payload is a slice of
/// `raw`'s buffer (one refcount bump).
pub fn decode_obj_shared(raw: &Bytes) -> ObjVal {
    let (seqno, start, len) = decode_header(raw);
    ObjVal {
        seqno,
        data: raw.slice(start, len),
    }
}

fn decode_header(raw: &[u8]) -> (SeqNo, usize, usize) {
    if raw.len() < OBJ_HEADER as usize {
        return (0, 0, 0);
    }
    let seqno = u64::from_le_bytes(raw[0..8].try_into().unwrap());
    let len = u32::from_le_bytes(raw[8..12].try_into().unwrap()) as usize;
    let avail = raw.len() - OBJ_HEADER as usize;
    (seqno, OBJ_HEADER as usize, len.min(avail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let raw = encode_obj(42, b"payload");
        let v = decode_obj(&raw);
        assert_eq!(v.seqno, 42);
        assert_eq!(v.data, b"payload");
    }

    #[test]
    fn decode_zeroes_is_unwritten() {
        let v = decode_obj(&[0u8; 64]);
        assert!(v.is_unwritten());
        assert!(v.data.is_empty());
    }

    #[test]
    fn decode_shared_is_zero_copy() {
        let raw = Bytes::from(encode_obj(7, b"payload"));
        let v = decode_obj_shared(&raw);
        assert_eq!(v.seqno, 7);
        assert_eq!(v.data, b"payload");
        assert!(Bytes::same_buffer(&raw, &v.data));
    }

    #[test]
    fn decode_truncated_payload_clamps() {
        let mut raw = encode_obj(1, b"abc");
        raw[8..12].copy_from_slice(&100u32.to_le_bytes()); // lie about length
        let v = decode_obj(&raw);
        assert_eq!(v.data, b"abc");
    }

    #[test]
    fn ranges() {
        let r = ObjRef::new(MemNodeId(2), 1000, 64);
        assert_eq!(r.seqno_range(), ItemRange::new(MemNodeId(2), 1000, 8));
        assert_eq!(r.full_range(), ItemRange::new(MemNodeId(2), 1000, 64));
        assert_eq!(r.payload_cap(), 52);
    }

    #[test]
    fn repl_at() {
        let r = ReplRef::new(500, 32);
        assert_eq!(r.at(MemNodeId(3)), ObjRef::new(MemNodeId(3), 500, 32));
    }
}
