//! The CDB cluster engine: hash routing, stored-procedure execution,
//! multi-partition transactions, and fan-out scans.

use crate::partition::Partition;
use minuet_sinfonia::Transport;
use parking_lot::Mutex;
use std::time::Duration;

/// CDB configuration.
#[derive(Debug, Clone)]
pub struct CdbConfig {
    /// Number of servers (one partition of each table per server).
    pub servers: usize,
    /// Number of tables.
    pub tables: usize,
    /// RTT for modeled latency (same constant as the Minuet cluster).
    pub model_rtt: Duration,
    /// Per-query scan buffer limit in bytes; long scans exceeding it fail
    /// (the paper: "CDB was unable to perform long scans due to internal
    /// memory limitations for individual queries").
    pub scan_memory_limit: usize,
}

impl Default for CdbConfig {
    fn default() -> Self {
        CdbConfig {
            servers: 4,
            tables: 1,
            model_rtt: Duration::from_micros(100),
            scan_memory_limit: 1 << 20,
        }
    }
}

/// Rows returned by a scan: `(key, value)` pairs in key order.
pub type Rows = Vec<(Vec<u8>, Vec<u8>)>;

/// CDB errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdbError {
    /// A scan exceeded the per-query memory cap.
    ScanMemoryExceeded {
        /// Bytes the scan would have buffered.
        needed: usize,
        /// Configured cap.
        limit: usize,
    },
}

impl std::fmt::Display for CdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdbError::ScanMemoryExceeded { needed, limit } => {
                write!(f, "scan needs {needed} B, per-query limit is {limit} B")
            }
        }
    }
}

impl std::error::Error for CdbError {}

fn hash_key(key: &[u8]) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A CDB cluster.
pub struct CdbCluster {
    cfg: CdbConfig,
    /// `tables[t][s]` = partition of table `t` on server `s`.
    tables: Vec<Vec<Partition>>,
    /// Multi-partition transactions serialize behind one coordinator.
    multi_coordinator: Mutex<()>,
    /// Instrumented transport (round-trip accounting, shared scheme with
    /// the Minuet side).
    pub transport: Transport,
}

impl CdbCluster {
    /// Builds a cluster.
    pub fn new(cfg: CdbConfig) -> Self {
        assert!(cfg.servers > 0 && cfg.tables > 0);
        let tables = (0..cfg.tables)
            .map(|_| (0..cfg.servers).map(|_| Partition::new()).collect())
            .collect();
        CdbCluster {
            transport: Transport::new(cfg.model_rtt, None),
            tables,
            multi_coordinator: Mutex::new(()),
            cfg,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.cfg.servers
    }

    fn route(&self, table: usize, key: &[u8]) -> &Partition {
        let s = (hash_key(key) % self.cfg.servers as u64) as usize;
        &self.tables[table][s]
    }

    /// Single-key read stored procedure: one server, one round trip.
    pub fn get(&self, table: usize, key: &[u8]) -> Option<Vec<u8>> {
        self.transport.round_trip(1);
        self.route(table, key).get(key)
    }

    /// Single-key write stored procedure: one round trip to the primary
    /// (backup applied synchronously within it).
    pub fn put(&self, table: usize, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        self.transport.round_trip(2); // primary + backup messages in parallel
        self.route(table, &key).put(key, value)
    }

    /// Single-key delete.
    pub fn remove(&self, table: usize, key: &[u8]) -> Option<Vec<u8>> {
        self.transport.round_trip(2);
        self.route(table, key).remove(key)
    }

    /// Multi-partition transaction: atomically applies `f` to every listed
    /// `(table, key)` pair. As in VoltDB-style engines, the transaction is
    /// coordinated globally and **stalls every server** for its duration
    /// (two-phase: prepare + commit fan-out to all servers).
    pub fn multi<R>(&self, keys: &[(usize, Vec<u8>)], f: impl FnOnce(&mut MultiCtx<'_>) -> R) -> R {
        // Global serialization point: only one multi-partition transaction
        // executes at a time (single-threaded coordinator).
        let _g = self.multi_coordinator.lock();
        // Engages all servers: prepare + commit.
        self.transport.round_trip(self.cfg.servers);
        let mut ctx = MultiCtx {
            cluster: self,
            keys,
        };
        let r = f(&mut ctx);
        self.transport.round_trip(self.cfg.servers);
        r
    }

    /// Range scan stored procedure: fans out to every server of the
    /// table, merges the per-partition results, and enforces the
    /// per-query memory cap.
    pub fn scan(&self, table: usize, start: &[u8], limit: usize) -> Result<Rows, CdbError> {
        // One fan-out round trip; every partition conservatively returns
        // up to `limit` rows because the coordinator cannot know the
        // global cut-off in advance — this over-fetch is what blows the
        // per-query memory budget on long scans.
        self.transport.round_trip(self.cfg.servers);
        let mut merged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut buffered = 0usize;
        for part in &self.tables[table] {
            let rows = part.scan_from(start, limit);
            buffered += rows
                .iter()
                .map(|(k, v)| k.len() + v.len() + 32)
                .sum::<usize>();
            if buffered > self.cfg.scan_memory_limit {
                return Err(CdbError::ScanMemoryExceeded {
                    needed: buffered,
                    limit: self.cfg.scan_memory_limit,
                });
            }
            merged.extend(rows);
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        merged.truncate(limit);
        Ok(merged)
    }

    /// Total records in a table (test support).
    pub fn table_len(&self, table: usize) -> usize {
        self.tables[table].iter().map(|p| p.len()).sum()
    }
}

/// Operations available inside a multi-partition transaction.
pub struct MultiCtx<'a> {
    cluster: &'a CdbCluster,
    keys: &'a [(usize, Vec<u8>)],
}

impl MultiCtx<'_> {
    /// Reads key `i` of the transaction's key list.
    pub fn get(&self, i: usize) -> Option<Vec<u8>> {
        let (table, key) = &self.keys[i];
        self.cluster.route(*table, key).get(key)
    }

    /// Writes key `i` of the transaction's key list.
    pub fn put(&mut self, i: usize, value: Vec<u8>) -> Option<Vec<u8>> {
        let (table, key) = &self.keys[i];
        self.cluster.route(*table, key).put(key.clone(), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minuet_sinfonia::with_op_net;

    fn cluster(servers: usize, tables: usize) -> CdbCluster {
        CdbCluster::new(CdbConfig {
            servers,
            tables,
            ..Default::default()
        })
    }

    #[test]
    fn single_key_crud() {
        let c = cluster(4, 1);
        assert_eq!(c.put(0, b"k".to_vec(), b"v".to_vec()), None);
        assert_eq!(c.get(0, b"k"), Some(b"v".to_vec()));
        assert_eq!(c.remove(0, b"k"), Some(b"v".to_vec()));
        assert_eq!(c.get(0, b"k"), None);
    }

    #[test]
    fn single_key_is_one_round_trip() {
        let c = cluster(8, 1);
        c.put(0, b"k".to_vec(), b"v".to_vec());
        let (_, net) = with_op_net(|| {
            c.get(0, b"k");
        });
        assert_eq!(net.round_trips, 1);
        assert_eq!(net.messages, 1);
    }

    #[test]
    fn multi_engages_all_servers() {
        let c = cluster(8, 2);
        let keys = vec![(0usize, b"a".to_vec()), (1usize, b"b".to_vec())];
        let (_, net) = with_op_net(|| {
            c.multi(&keys, |ctx| {
                ctx.put(0, b"1".to_vec());
                ctx.put(1, b"2".to_vec());
            });
        });
        assert_eq!(net.round_trips, 2);
        assert_eq!(net.messages, 16, "2 phases x 8 servers");
        assert_eq!(c.get(0, b"a"), Some(b"1".to_vec()));
        assert_eq!(c.get(1, b"b"), Some(b"2".to_vec()));
    }

    #[test]
    fn multi_transactions_serialize() {
        // Two concurrent multi transactions on disjoint keys still
        // serialize (global coordinator): verify with a read-modify-write
        // race that would lose updates if they interleaved.
        let c = std::sync::Arc::new(cluster(4, 1));
        c.put(0, b"ctr".to_vec(), 0u64.to_le_bytes().to_vec());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let keys = vec![(0usize, b"ctr".to_vec())];
                    c.multi(&keys, |ctx| {
                        let v = u64::from_le_bytes(ctx.get(0).unwrap().try_into().unwrap());
                        ctx.put(0, (v + 1).to_le_bytes().to_vec());
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = u64::from_le_bytes(c.get(0, b"ctr").unwrap().try_into().unwrap());
        assert_eq!(v, 2000);
    }

    #[test]
    fn scan_merges_across_partitions() {
        let c = cluster(4, 1);
        for i in 0..100u64 {
            c.put(0, format!("k{i:04}").into_bytes(), vec![1]);
        }
        let rows = c.scan(0, b"k0010", 20).unwrap();
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].0, b"k0010".to_vec());
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn long_scan_exceeds_memory_cap() {
        let mut cfg = CdbConfig {
            servers: 4,
            tables: 1,
            ..Default::default()
        };
        cfg.scan_memory_limit = 4 * 1024;
        let c = CdbCluster::new(cfg);
        for i in 0..2000u64 {
            c.put(0, format!("user{i:010}").into_bytes(), vec![0u8; 8]);
        }
        assert!(matches!(
            c.scan(0, b"", 2000),
            Err(CdbError::ScanMemoryExceeded { .. })
        ));
        // Short scans still work.
        assert!(c.scan(0, b"", 10).is_ok());
    }

    #[test]
    fn partitions_roughly_balanced() {
        let c = cluster(4, 1);
        for i in 0..4000u64 {
            c.put(0, format!("user{i:010}").into_bytes(), vec![1]);
        }
        for s in 0..4 {
            let n = c.tables[0][s].len();
            assert!((700..1300).contains(&n), "partition {s} has {n}");
        }
    }
}
