//! # minuet-cdb
//!
//! **CDB**: an emulation of the unnamed "modern commercial main-memory
//! database" the Minuet paper benchmarks against (§6.2) — a VoltDB-style,
//! hash-partitioned, stored-procedure engine:
//!
//! * each table is hash-partitioned across servers; one logical thread
//!   owns each partition (emulated by a per-partition lock),
//! * single-key stored procedures execute at exactly one server,
//! * **multi-partition transactions engage every server** and serialize
//!   behind a global coordinator — the structural reason Fig. 13 shows
//!   CDB collapsing on dual-key transactions while Minuet scales,
//! * every item is synchronously replicated once (primary-backup),
//! * scans fan out to all servers and buffer results subject to a
//!   per-query memory cap — the reason the paper "was unable to perform
//!   long scans" on CDB (§6.3).
//!
//! Network costs are accounted through the same instrumented
//! [`Transport`](minuet_sinfonia::Transport) as Minuet, so modeled
//! latencies are directly comparable.

pub mod engine;
pub mod partition;

pub use engine::{CdbCluster, CdbConfig, CdbError};
pub use partition::Partition;
