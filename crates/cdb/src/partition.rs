//! A CDB partition: an ordered in-memory store owned by one logical
//! execution thread.
//!
//! VoltDB-style engines avoid latching by giving each partition to exactly
//! one thread; requests for a partition queue behind each other. We model
//! that ownership with a mutex: concurrent callers serialize exactly as
//! queued stored procedures would.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// One hash partition of one table, with a synchronous backup replica.
pub struct Partition {
    primary: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    backup: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl Default for Partition {
    fn default() -> Self {
        Self::new()
    }
}

impl Partition {
    /// Creates an empty partition.
    pub fn new() -> Self {
        Partition {
            primary: Mutex::new(BTreeMap::new()),
            backup: Mutex::new(BTreeMap::new()),
        }
    }

    /// Point read (primary replica).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.primary.lock().get(key).cloned()
    }

    /// Insert/update; synchronously applied to the backup, as in the
    /// paper's configuration ("replicated all the data once").
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        self.backup.lock().insert(key.clone(), value.clone());
        self.primary.lock().insert(key, value)
    }

    /// Delete.
    pub fn remove(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.backup.lock().remove(key);
        self.primary.lock().remove(key)
    }

    /// Local portion of a range scan: up to `limit` entries with
    /// `key >= start`.
    pub fn scan_from(&self, start: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.primary
            .lock()
            .range(start.to_vec()..)
            .take(limit)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of records (primary).
    pub fn len(&self) -> usize {
        self.primary.lock().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.primary.lock().is_empty()
    }

    /// Test support: primary and backup replicas agree.
    pub fn replicas_consistent(&self) -> bool {
        *self.primary.lock() == *self.backup.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_and_replication() {
        let p = Partition::new();
        assert_eq!(p.put(b"a".to_vec(), b"1".to_vec()), None);
        assert_eq!(p.put(b"a".to_vec(), b"2".to_vec()), Some(b"1".to_vec()));
        assert_eq!(p.get(b"a"), Some(b"2".to_vec()));
        assert!(p.replicas_consistent());
        assert_eq!(p.remove(b"a"), Some(b"2".to_vec()));
        assert!(p.is_empty());
        assert!(p.replicas_consistent());
    }

    #[test]
    fn local_scan_ordered() {
        let p = Partition::new();
        for i in [3u8, 1, 2, 9, 5] {
            p.put(vec![i], vec![i]);
        }
        let got = p.scan_from(&[2], 3);
        assert_eq!(
            got.iter().map(|(k, _)| k[0]).collect::<Vec<_>>(),
            vec![2, 3, 5]
        );
    }
}
